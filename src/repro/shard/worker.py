"""Per-shard sweep workers (module-level, picklable, spawn-safe).

A worker receives one shard's local window — the slab plus ``r0*s``
gathered context rows per side — and advances it ``s`` sub-steps without
talking to anyone, then returns exactly the slab rows.  Two engines:

* **reference** — shifted-view accumulation in the reference tap order
  (:mod:`repro.stencils.reference`), computing a collar that shrinks one
  radius per sub-step (:meth:`~repro.shard.plan.ShardPlan.margins`), so
  the result is *bitwise* what the serial reference produces for those
  rows;
* **program** — the compiled vector pipeline: a local program is lowered
  for the window's geometry (memoized per worker process) and driven by
  :func:`~repro.vectorize.driver.run_program` with its full
  codegen → batch → interp degradation ladder.  The local boundary fill
  writes garbage into neighbor-fed ghosts, but garbage creeps inward at
  one fused radius per sweep and the pad is sized to absorb exactly
  ``s`` sub-steps of creep, so the slab stays bitwise exact.

Shipped ``actions`` are faults the parent decided at submission time
(workers cannot see the parent's injector; see
:mod:`repro.faults.injector`) — replayed first, before any array is
touched, so a faulted task is all-or-nothing and recomputation is
idempotent.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from .. import faults
from ..config import MachineConfig
from ..stencils.boundary import fill_halo
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec


@dataclass(frozen=True)
class KernelRecipe:
    """Everything a worker needs to rebuild the compiled pipeline for its
    own window geometry (hashable: keys the per-process program memo)."""

    spec: StencilSpec
    machine: MachineConfig
    time_fusion: int               #: resolved ITM depth (an int, not "auto")
    use_sdf: bool
    exec_backend: str


@dataclass(frozen=True)
class ShardJob:
    """One shard-superstep task (picklable; the payload rides separately)."""

    index: int
    s_eff: int                     #: sub-steps this superstep advances
    lo_pad: int                    #: in-domain context rows below the slab
    hi_pad: int                    #: in-domain context rows above the slab
    lo_edge: bool                  #: low side is a dirichlet domain edge
    hi_edge: bool
    boundary: str
    value: float
    recipe: Optional[KernelRecipe] = None  #: None = reference engine
    exec_backend: str = "auto"


def _machine_dtype(machine: MachineConfig):
    return np.float32 if machine.element_bytes == 4 else np.float64


@lru_cache(maxsize=64)
def _local_program(recipe: KernelRecipe, shape: Tuple[int, ...]):
    """The compiled vector program for one window geometry, plus the halo
    it binds.  Planning is deterministic, so every worker process lowers
    the same program the parent would."""
    from ..core.jigsaw import generate_jigsaw, required_halo
    from ..core.planner import plan as make_plan
    p = make_plan(recipe.spec, recipe.machine,
                  time_fusion=recipe.time_fusion, use_sdf=recipe.use_sdf)
    halo = required_halo(recipe.spec, recipe.machine,
                         time_fusion=p.time_fusion)
    grid = Grid(shape, halo, dtype=_machine_dtype(recipe.machine))
    program = generate_jigsaw(recipe.spec, recipe.machine, grid,
                              time_fusion=p.time_fusion, terms=p.terms,
                              scheme=p.scheme)
    return program, halo


def _reference_sweep(spec: StencilSpec, job: ShardJob,
                     payload: np.ndarray) -> np.ndarray:
    """``s_eff`` shrinking-collar sub-steps in the reference tap order."""
    cur = Grid.from_array(payload, spec.radius)
    nxt = cur.like()
    r0 = spec.radius[0]
    h0 = cur.halo[0]
    extent = payload.shape[0]
    inner = tuple(
        slice(h, h + n) for h, n in zip(cur.halo[1:], cur.shape[1:]))
    for k in range(1, job.s_eff + 1):
        # the halo fill serves double duty: inner-axis ghosts are exact
        # (full rows travel with the window), and the outer-axis ghost is
        # the dirichlet constant on domain-edge sides — neighbor-fed
        # sides never read theirs (the collar keeps reads off it)
        fill_halo(cur, job.boundary, value=job.value)
        shrink = r0 * (job.s_eff - k)
        m_lo = 0 if job.lo_edge else job.lo_pad - shrink
        m_hi = 0 if job.hi_edge else job.hi_pad - shrink
        lo = h0 + m_lo
        hi = h0 + extent - m_hi
        dst = nxt.data[(slice(lo, hi),) + inner]
        dst.fill(0.0)
        for off, c in zip(spec.offsets, spec.coeffs):
            sl = (slice(lo + off[0], hi + off[0]),) + tuple(
                slice(h + o, h + o + n)
                for h, n, o in zip(cur.halo[1:], cur.shape[1:], off[1:]))
            np.add(dst, c * cur.data[sl], out=dst)
        cur, nxt = nxt, cur
    slab = extent - job.lo_pad - job.hi_pad
    return np.ascontiguousarray(
        cur.interior[job.lo_pad:job.lo_pad + slab])


def _program_sweep(job: ShardJob, payload: np.ndarray) -> np.ndarray:
    """``s_eff`` sub-steps through the compiled pipeline on the local
    window (codegen preferred, full degradation ladder)."""
    program, halo = _local_program(job.recipe, payload.shape)
    grid = Grid.from_array(payload, halo)
    out = run_program_local(program, grid, job)
    slab = payload.shape[0] - job.lo_pad - job.hi_pad
    return np.ascontiguousarray(
        out.interior[job.lo_pad:job.lo_pad + slab])


def run_program_local(program, grid: Grid, job: ShardJob) -> Grid:
    from ..vectorize.driver import run_program
    return run_program(program, grid, job.s_eff, boundary=job.boundary,
                       value=job.value, backend=job.exec_backend)


def run_shard_task(args) -> np.ndarray:
    """Pool entry point: replay shipped faults, sweep, return the slab."""
    spec, job, payload, actions = args
    for action in actions:
        faults.perform_shipped(action)
    if job.recipe is not None:
        return _program_sweep(job, payload)
    return _reference_sweep(spec, job, payload)
