"""The end-to-end correctness matrix, as a library function.

``validate()`` sweeps (scheme x kernel x SIMD width x boundary) and checks
every generated instruction stream against the dense numpy reference on
the SIMD-machine interpreter — the same guarantee the test suite gives,
packaged for users who change kernels, machines, or generator code and
want a one-call audit (``python -m repro validate``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .config import (
    GENERIC_AVX2,
    GENERIC_AVX2_F32,
    GENERIC_AVX512,
    GENERIC_AVX512_F32,
    GENERIC_SSE,
    GENERIC_SSE_F32,
    MachineConfig,
)
from .errors import ReproError
from .schemes import SCHEMES, generate, scheme_halo
from .stencils import apply_steps, library
from .stencils.grid import Grid
from .stencils.spec import StencilSpec
from .vectorize.driver import run_program

DEFAULT_KERNELS: Tuple[str, ...] = (
    "heat-1d", "star-1d5p", "star-1d7p", "heat-2d", "box-2d9p",
    "star-2d9p", "heat-3d", "box-3d27p",
)
DEFAULT_MACHINES: Tuple[MachineConfig, ...] = (
    GENERIC_SSE, GENERIC_AVX2, GENERIC_AVX512,
    GENERIC_SSE_F32, GENERIC_AVX2_F32, GENERIC_AVX512_F32,
)


@dataclass(frozen=True)
class ValidationCase:
    scheme: str
    kernel: str
    machine: str
    boundary: str
    ok: bool
    max_error: float
    detail: str = ""

    @property
    def label(self) -> str:
        return f"{self.scheme}/{self.kernel}/{self.machine}/{self.boundary}"


@dataclass(frozen=True)
class ValidationReport:
    cases: Tuple[ValidationCase, ...]

    @property
    def passed(self) -> int:
        return sum(1 for c in self.cases if c.ok)

    @property
    def failed(self) -> Tuple[ValidationCase, ...]:
        return tuple(c for c in self.cases if not c.ok)

    @property
    def all_ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        lines = [f"{self.passed}/{len(self.cases)} cases passed"]
        for c in self.failed:
            lines.append(f"  FAIL {c.label}: {c.detail or c.max_error}")
        return "\n".join(lines)


def _check_one(scheme: str, spec: StencilSpec, machine: MachineConfig,
               boundary: str, *, seed: int, tol: float) -> ValidationCase:
    try:
        halo = scheme_halo(scheme, spec, machine)
        nx = 6 * max(machine.vector_elems, 4) + 3  # exercise the epilogue
        if scheme == "folding":
            nx = 3 * machine.vector_elems ** 2 + 3
        shape = (4,) * (spec.ndim - 1) + (nx,)
        dtype = np.float32 if machine.element_bytes == 4 else np.float64
        if machine.element_bytes == 4:
            tol = max(tol, 5e-4)  # single-precision round-off
        grid = Grid.random(shape, halo, seed=seed, dtype=dtype)
        prog = generate(scheme, spec, machine, grid)
        steps = prog.steps_per_iter
        if steps > 1 and boundary != "periodic":
            return ValidationCase(scheme, spec.name, machine.name, boundary,
                                  True, 0.0, "skipped: fused + non-periodic")
        got = run_program(prog, grid, steps, boundary=boundary, value=0.25)
        ref = apply_steps(spec, grid, steps, boundary=boundary, value=0.25)
        err = float(np.max(np.abs(got.interior - ref.interior)))
        scale = float(np.max(np.abs(ref.interior))) or 1.0
        ok = err <= tol * scale
        return ValidationCase(scheme, spec.name, machine.name, boundary,
                              ok, err)
    except ReproError as exc:
        # schemes legitimately refuse some (kernel, machine) combos
        reason = str(exc)
        benign = any(key in reason for key in (
            "folding", "x-radius", "1-D kernels only", "centro-symmetric",
        ))
        return ValidationCase(scheme, spec.name, machine.name, boundary,
                              benign, float("nan"),
                              f"{'unsupported' if benign else 'ERROR'}: "
                              f"{reason}")


def validate(
    *,
    schemes: Sequence[str] = SCHEMES,
    kernels: Sequence[str] = DEFAULT_KERNELS,
    machines: Iterable[MachineConfig] = DEFAULT_MACHINES,
    boundaries: Sequence[str] = ("periodic", "dirichlet"),
    seed: int = 0,
    tol: float = 1e-11,
) -> ValidationReport:
    """Run the full correctness matrix; returns a report (no raising)."""
    cases: List[ValidationCase] = []
    for machine in machines:
        for kernel in kernels:
            spec = library.get(kernel)
            for scheme in schemes:
                for boundary in boundaries:
                    cases.append(_check_one(scheme, spec, machine, boundary,
                                            seed=seed, tol=tol))
    return ValidationReport(cases=tuple(cases))
