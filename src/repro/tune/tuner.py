"""The tuner front-end: database check, model pruning, empirical search.

:meth:`Tuner.tune` is the one entry point the CLI, the
:class:`~repro.service.KernelService`, and the benchmarks share::

    tuner = Tuner(machine, cache=cache, db=TuningDB(db_dir))
    report = tuner.tune(spec, (512, 512), steps=4,
                        budget=TuneBudget(max_trials=8))
    report.best.config      # the winning TuneConfig
    report.from_db          # True -> zero empirical trials ran

A database hit short-circuits the whole pipeline (zero trials); a miss
runs the two-stage search (:mod:`repro.tune.engine`) and persists the
winner with full measurement provenance, so the *next* identical workload
is a hit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .. import obs
from ..config import MachineConfig
from ..core.cache import KernelCache, default_cache
from ..errors import TuneError
from ..faults import TaskTimeout, call_with_timeout
from ..stencils.spec import StencilSpec
from .db import TuningDB, TuningRecord, workload_key
from .engine import (
    Trial,
    TuneBudget,
    measure,
    rank_candidates,
    select_top,
    trial_steps,
)
from .space import (
    DEFAULT_SCHEMES,
    ENGINES,
    TuneConfig,
    default_config,
    enumerate_space,
)


@dataclass(frozen=True)
class TuneReport:
    """Everything one tuning run decided and why."""

    spec_name: str
    machine_name: str
    shape: Tuple[int, ...]
    steps: int
    key: str
    best: Trial                    #: the winner (synthesized on DB hits)
    from_db: bool = False          #: True -> zero empirical trials ran
    trials: Tuple[Trial, ...] = ()   #: every empirical trial, run order
    candidates: int = 0            #: legal search-space size
    stopped: str = "complete"      #: complete | patience | budget
    record: Optional[TuningRecord] = field(default=None, compare=False)

    @property
    def ranking(self) -> List[Trial]:
        """Successful trials, fastest first."""
        return sorted((t for t in self.trials if t.ok),
                      key=lambda t: -t.mstencil_s)

    def summary(self) -> str:
        src = ("tuning DB hit — 0 empirical trials"
               if self.from_db else
               f"{len(self.trials)} trial(s) over {self.candidates} "
               f"legal configuration(s), search {self.stopped}")
        return (
            f"{self.spec_name} @ {'x'.join(map(str, self.shape))} on "
            f"{self.machine_name}: {self.best.config.label()} -> "
            f"{self.best.mstencil_s:.2f} MStencil/s ({src})"
        )


class Tuner:
    """Model-guided empirical autotuner over one machine model."""

    def __init__(
        self,
        machine: MachineConfig,
        *,
        cache: Optional[KernelCache] = None,
        db: Optional[TuningDB] = None,
        budget: Optional[TuneBudget] = None,
    ) -> None:
        self.machine = machine
        self.cache = cache if cache is not None else default_cache()
        self.db = db if db is not None else TuningDB()
        self.budget = budget or TuneBudget()

    # -- the main entry point --------------------------------------------------
    def tune(
        self,
        spec: StencilSpec,
        shape: Sequence[int],
        *,
        steps: int = 4,
        budget: Optional[TuneBudget] = None,
        engines: Sequence[str] = ENGINES,
        exec_backends: Sequence[str] = ("auto", "interp"),
        schemes: Sequence[str] = DEFAULT_SCHEMES,
        boundary: str = "periodic",
        force: bool = False,
    ) -> TuneReport:
        """Best configuration for ``spec`` over interior ``shape``.

        Checks the database first unless ``force``; on a miss, ranks the
        legal space analytically, times the stratified top candidates
        under ``budget`` (the planner's default configuration always gets
        a trial), records the winner, and returns the full report.
        """
        if steps < 1:
            raise TuneError("steps must be >= 1")
        shape = tuple(int(n) for n in shape)
        budget = budget or self.budget
        key = workload_key(spec, self.machine, shape, boundary=boundary)

        if not force:
            rec = self.db.get(key)
            if rec is not None:
                obs.counter("tune.db_hits").inc()
                best = Trial(config=rec.config, seconds=rec.seconds,
                             mstencil_s=rec.mstencil_s, steps=rec.steps,
                             repeats=1)
                return TuneReport(
                    spec_name=spec.name, machine_name=self.machine.name,
                    shape=shape, steps=steps, key=key, best=best,
                    from_db=True, record=rec,
                )

        obs.counter("tune.db_misses").inc()
        with obs.span("tune", kernel=spec.name,
                      shape="x".join(map(str, shape))) as tspan:
            return self._search(spec, shape, steps=steps, budget=budget,
                                engines=engines,
                                exec_backends=exec_backends,
                                schemes=schemes,
                                boundary=boundary, key=key, tspan=tspan)

    def _search(self, spec, shape, *, steps, budget, engines,
                exec_backends, schemes, boundary, key, tspan) -> TuneReport:
        space = enumerate_space(spec, self.machine, shape,
                                engines=engines,
                                exec_backends=exec_backends,
                                schemes=schemes)
        if not space:
            raise TuneError(
                f"no legal configuration for {spec.name} over {shape}")
        with obs.span("tune.rank", candidates=len(space)):
            ranked = rank_candidates(spec, self.machine, space, shape,
                                     steps=steps, cache=self.cache)
        if not ranked:
            raise TuneError(
                f"the analytic model rejected every configuration for "
                f"{spec.name} over {shape}")
        baseline = default_config(spec, self.machine)
        selected = select_top(ranked, budget.max_trials, always=[baseline])

        deadline = (time.perf_counter() + budget.max_seconds
                    if budget.max_seconds is not None else None)
        trials: List[Trial] = []
        best: Optional[Trial] = None
        since_improve = 0
        stopped = "complete"
        for cfg, score in selected:
            now = time.perf_counter()
            if deadline is not None and now > deadline:
                stopped = "budget"
                break
            # measure() only polls the deadline *between* timed runs, so
            # one slow run could overshoot max_seconds unboundedly; a
            # hard cap at the remaining budget turns the overrun into a
            # failed trial instead (the worker thread is abandoned, the
            # search moves on)
            remaining = None if deadline is None else max(deadline - now,
                                                          0.01)
            with obs.span("tune.trial", config=cfg.label()) as span:
                try:
                    trial = call_with_timeout(
                        lambda: measure(spec, self.machine, cfg, shape,
                                        steps=steps, budget=budget,
                                        cache=self.cache, boundary=boundary,
                                        model_score=score,
                                        deadline=deadline),
                        remaining)
                except TaskTimeout:
                    obs.counter("tune.trial_overruns").inc()
                    trial = Trial(
                        config=cfg, steps=trial_steps(cfg, steps),
                        model_score=score, timed_out=True,
                        error=(f"trial overran the remaining "
                               f"{remaining:.3g}s search budget"))
                span.set(ok=trial.ok, mstencil_s=round(trial.mstencil_s, 3))
            obs.counter("tune.trials").inc()
            if obs.enabled() and trial.ok:
                obs.histogram("tune.trial_ms").observe(trial.seconds * 1e3)
            trials.append(trial)
            if trial.ok and (best is None
                             or trial.mstencil_s > best.mstencil_s):
                best = trial
                since_improve = 0
            else:
                since_improve += 1
                if since_improve >= budget.patience:
                    stopped = "patience"
                    break
        if best is None:
            raise TuneError(
                f"every empirical trial failed for {spec.name} over "
                f"{shape}: "
                + "; ".join(t.error or "timeout" for t in trials))

        record = TuningRecord(
            key=key, config=best.config, mstencil_s=best.mstencil_s,
            seconds=best.seconds, steps=best.steps,
            trials=tuple(t.to_dict() for t in trials),
            budget=budget.as_dict(),
        )
        self.db.put(record)
        tspan.set(trials=len(trials), stopped=stopped,
                  winner=best.config.label())
        return TuneReport(
            spec_name=spec.name, machine_name=self.machine.name,
            shape=shape, steps=steps, key=key, best=best,
            from_db=False, trials=tuple(trials), candidates=len(space),
            stopped=stopped, record=record,
        )

    # -- transparent reuse -----------------------------------------------------
    def tuned_config(self, spec: StencilSpec, shape: Sequence[int], *,
                     boundary: str = "periodic") -> Optional[TuneConfig]:
        """The stored winner for this workload, or ``None`` (no search is
        triggered)."""
        rec = self.db.lookup(spec, self.machine, tuple(int(n) for n in shape),
                             boundary=boundary)
        return rec.config if rec is not None else None


__all__ = ["TuneReport", "Tuner"]
