"""Autotuning: model-guided + empirical configuration search with a
persistent tuning database.

The planner (:mod:`repro.core.planner`) hard-codes the paper's §4.3–§4.4
deployment policy; this subsystem instead *searches* the repo's real
configuration space — plan variants (ITM depth, SDF on/off), SIMD-machine
execution backends, tile schedules and worker counts — per workload, and
remembers every winner:

* :mod:`~repro.tune.space` — legal-configuration enumeration;
* :mod:`~repro.tune.engine` — analytic ranking + budgeted empirical
  timing (:class:`TuneBudget`);
* :mod:`~repro.tune.db` — the content-addressed persistent
  :class:`TuningDB`;
* :mod:`~repro.tune.tuner` — :class:`Tuner`, the front-end gluing the
  three together;
* :mod:`~repro.tune.online` — :class:`OnlineTuner`, the live-traffic
  variant: epsilon-greedy trials in idle serving slots, bitwise-verified
  atomic promotion into the shared database.

Entry points: ``python -m repro tune``, ``KernelService.compile_many(...,
tune=True)``, ``compile_kernel(..., tuned=cfg)``, and
``repro serve --online-tune``.
"""

from .db import TuningDB, TuningRecord, default_tuning_dir, workload_key
from .engine import Trial, TuneBudget
from .online import OnlineTrial, OnlineTuneConfig, OnlineTuner
from .space import (
    ENGINES,
    TuneConfig,
    default_config,
    enumerate_space,
)
from .tuner import TuneReport, Tuner

__all__ = [
    "ENGINES",
    "OnlineTrial",
    "OnlineTuneConfig",
    "OnlineTuner",
    "Trial",
    "TuneBudget",
    "TuneConfig",
    "TuneReport",
    "Tuner",
    "TuningDB",
    "TuningRecord",
    "default_config",
    "default_tuning_dir",
    "enumerate_space",
    "workload_key",
]
