"""Online autotuning: explore in idle slots, serve on the incumbent.

The offline :class:`~repro.tune.tuner.Tuner` answers "what is the best
configuration for this workload?" with a blocking search; a live service
cannot afford that.  :class:`OnlineTuner` instead runs the bandit-style
explore/exploit split production autotuners use:

* **Serving always uses the incumbent** — the planner's default
  configuration until the shared :class:`~repro.tune.db.TuningDB` has a
  winner, then that winner.  No request ever waits on a trial.
* **Exploration rides idle capacity.**  Each :meth:`OnlineTuner.step`
  is one *opportunity* to run a budgeted empirical trial of a contender
  configuration; it declines (and counts ``tune.online.gated``) unless
  the ``idle`` predicate says the owner has nothing better to do — the
  :class:`~repro.server.core.StencilServer` wires this to "no admitted
  request is in flight and no batch is open".
* **Candidates come from the offline search space**
  (:func:`~repro.tune.space.enumerate_space`), chosen epsilon-greedily:
  with probability ``1 - epsilon`` the best *model-ranked* untried
  candidate (greedy by the stage-1 analytic score), with probability
  ``epsilon`` a uniformly random untried one.  The choice stream is a
  pure function of the seed and the trial history, so runs replay
  deterministically.
* **Promotion is bitwise-safe and atomic.**  A contender only replaces
  the incumbent after (a) out-throughputting it by ``promote_margin``
  in same-harness trials and (b) producing *bitwise-identical* results
  to the incumbent on a seeded verification sweep.  Winners land in the
  shared database through :meth:`TuningDB.promote` (per-writer delta
  files — concurrent promoters cannot lose updates) and the compile
  cache is pre-warmed for plan-aware winners, so the first request
  served on a new incumbent never pays its compile.

Everything lands under the ``tune.online.*`` obs taxonomy and in
:meth:`OnlineTuner.stats` (which works even with obs disabled).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..errors import ReproError, TuneError
from ..parallel.executor import run_parallel
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec
from .db import TuningRecord, workload_key
from .engine import Trial, TuneBudget, measure, rank_candidates
from .space import TuneConfig, default_config, enumerate_space

#: engines the online space explores by default.  ``shard`` is excluded:
#: spinning a process pool inside an idle slot costs more than a slot is
#: worth, and the offline tuner still covers it.
DEFAULT_ONLINE_ENGINES: Tuple[str, ...] = ("machine", "numpy", "tiled")


@dataclass(frozen=True)
class OnlineTuneConfig:
    """Knobs for one :class:`OnlineTuner`."""

    epsilon: float = 0.25           #: P(random candidate) per trial
    seed: int = 0                   #: RNG seed (determinism contract)
    trial_steps: int = 2            #: sweeps per timed trial run
    warmup: int = 0                 #: untimed runs per trial
    repeats: int = 1                #: timed runs per trial (median)
    trial_timeout_s: float = 30.0   #: per-trial wall-clock cap
    max_trials: Optional[int] = None  #: lifetime trial budget (None = off)
    min_interval_s: float = 0.0     #: cool-down between trials
    promote_margin: float = 1.05    #: contender must beat incumbent by this
    confirm_trials: int = 1         #: re-measurements of the leader at the end
    verify_steps: int = 2           #: sweeps of the bitwise verification run
    verify_seed: int = 517          #: seeded grid the verification sweeps
    engines: Tuple[str, ...] = DEFAULT_ONLINE_ENGINES
    exec_backends: Tuple[str, ...] = ("auto", "interp")
    poll_interval_s: float = 0.02   #: background-thread nap between steps

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon <= 1.0:
            raise TuneError("epsilon must be within [0, 1]")
        if self.trial_steps < 1 or self.verify_steps < 1:
            raise TuneError("trial_steps and verify_steps must be >= 1")
        if self.warmup < 0 or self.repeats < 1:
            raise TuneError("warmup must be >= 0 and repeats >= 1")
        if self.trial_timeout_s <= 0:
            raise TuneError("trial_timeout_s must be positive")
        if self.max_trials is not None and self.max_trials < 1:
            raise TuneError("max_trials must be >= 1 (or None)")
        if self.min_interval_s < 0:
            raise TuneError("min_interval_s must be >= 0")
        if self.promote_margin < 1.0:
            raise TuneError("promote_margin must be >= 1.0")
        if self.confirm_trials < 0:
            raise TuneError("confirm_trials must be >= 0")
        if self.poll_interval_s <= 0:
            raise TuneError("poll_interval_s must be positive")

    def trial_budget(self) -> TuneBudget:
        """The per-trial budget every online measurement runs under."""
        return TuneBudget(max_trials=1, warmup=self.warmup,
                          repeats=self.repeats,
                          trial_timeout_s=self.trial_timeout_s,
                          patience=1)


@dataclass(frozen=True)
class OnlineTrial:
    """What one productive :meth:`OnlineTuner.step` did."""

    workload: str                 #: ``<kernel> @ <shape>``
    kind: str                     #: incumbent | explore | greedy | confirm
    trial: Trial
    promoted: bool = False        #: landed in the TuningDB this step
    verified: Optional[bool] = None  #: bitwise check outcome (None = not run)


def _config_key(config: TuneConfig) -> str:
    return repr(sorted(config.as_dict().items()))


class _Workload:
    """Per-workload exploration state."""

    __slots__ = ("spec", "shape", "steps", "boundary", "key", "label",
                 "candidates", "scores", "results", "tried", "rejected",
                 "incumbent", "incumbent_score", "confirms", "converged")

    def __init__(self, spec: StencilSpec, shape: Tuple[int, ...],
                 steps: int, boundary: str, key: str,
                 incumbent: TuneConfig,
                 incumbent_score: Optional[float]) -> None:
        self.spec = spec
        self.shape = shape
        self.steps = steps
        self.boundary = boundary
        self.key = key
        self.label = f"{spec.name} @ {'x'.join(map(str, shape))}"
        self.candidates: Optional[List[TuneConfig]] = None  # lazily ranked
        self.scores: Dict[str, float] = {}       #: stage-1 model scores
        self.results: Dict[str, Trial] = {}      #: best trial per config
        self.tried: set = set()
        self.rejected: set = set()               #: failed bitwise verification
        self.incumbent = incumbent
        self.incumbent_score = incumbent_score   #: None until measured
        self.confirms = 0
        self.converged = False

    def leader(self) -> Optional[Trial]:
        """The best-throughput contender trial that is still eligible."""
        best: Optional[Trial] = None
        for ckey, trial in self.results.items():
            if ckey in self.rejected:
                continue
            if best is None or trial.mstencil_s > best.mstencil_s:
                best = trial
        return best


class OnlineTuner:
    """Budgeted idle-slot exploration over one service's workloads.

    ``service`` is duck-typed — anything with ``machine``, ``cache``,
    ``tuning_db`` and ``compile()`` works (in production it is a
    :class:`~repro.service.KernelService`).  ``idle`` is the occupancy
    gate: trials only run while it returns ``True``.  ``None`` means
    always idle (offline convergence runs and tests).

    Thread-safety: :meth:`observe` may be called from any thread (the
    server calls it on the event loop); :meth:`step` is intended for one
    driver — either the background thread :meth:`start` spawns or a
    caller's own loop, never both at once.
    """

    def __init__(self, service, *,
                 config: Optional[OnlineTuneConfig] = None,
                 idle: Optional[Callable[[], bool]] = None) -> None:
        if config is not None and not isinstance(config, OnlineTuneConfig):
            raise TuneError(
                f"config must be an OnlineTuneConfig, got {config!r}")
        self.service = service
        self.machine = service.machine
        self.cache = service.cache
        self.db = service.tuning_db
        self.config = config or OnlineTuneConfig()
        self._idle = idle if idle is not None else (lambda: True)
        self._rng = random.Random(self.config.seed)
        self._budget = self.config.trial_budget()
        self._lock = threading.Lock()
        self._states: Dict[str, _Workload] = {}
        self._order: List[str] = []       #: observation order (round-robin)
        self._cursor = 0
        self._last_trial = float("-inf")  #: monotonic time of the last trial
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._counts = {
            "workloads": 0, "steps": 0, "gated": 0, "trials": 0,
            "trial_failures": 0, "explore": 0, "greedy": 0,
            "promotions": 0, "verified": 0, "verify_failures": 0,
            "prewarmed": 0, "converged": 0,
        }

    # -- intake ----------------------------------------------------------------
    def observe(self, spec: StencilSpec, shape: Sequence[int], *,
                steps: int = 2, boundary: str = "periodic") -> None:
        """Register one live workload (cheap and idempotent — the server
        calls this on every admitted request)."""
        shape = tuple(int(n) for n in shape)
        key = workload_key(spec, self.machine, shape, boundary=boundary)
        with self._lock:
            if key in self._states:
                return
        # first sighting: resolve the incumbent outside the lock (the DB
        # read may touch disk)
        record = self.db.get(key)
        if record is not None:
            incumbent, incumbent_score = record.config, record.mstencil_s
        else:
            incumbent, incumbent_score = default_config(spec,
                                                        self.machine), None
        state = _Workload(spec, shape, max(1, int(steps)), boundary, key,
                          incumbent, incumbent_score)
        with self._lock:
            if key in self._states:  # lost a registration race — keep first
                return
            self._states[key] = state
            self._order.append(key)
            self._counts["workloads"] += 1
        obs.counter("tune.online.workloads").inc()

    def incumbent(self, spec: StencilSpec, shape: Sequence[int], *,
                  boundary: str = "periodic") -> TuneConfig:
        """The configuration requests should run on right now: the
        current DB winner, else the planner default."""
        record = self.db.lookup(spec, self.machine,
                                tuple(int(n) for n in shape),
                                boundary=boundary)
        if record is not None:
            return record.config
        return default_config(spec, self.machine)

    # -- the exploration step --------------------------------------------------
    def step(self) -> Optional[OnlineTrial]:
        """One idle-slot opportunity: maybe run one budgeted trial.

        Returns the :class:`OnlineTrial` if a measurement ran, ``None``
        if the step declined (gated on occupancy, cooling down, out of
        budget, or every observed workload has converged).
        """
        self._counts["steps"] += 1
        obs.counter("tune.online.steps").inc()
        state = self._pick_state()
        if state is None:
            return None
        if not self._idle():
            self._counts["gated"] += 1
            obs.counter("tune.online.gated").inc()
            return None
        now = time.monotonic()
        if now - self._last_trial < self.config.min_interval_s:
            return None
        self._ensure_candidates(state)
        # a promotion deferred by an earlier busy gate retries here
        self._maybe_promote(state, OnlineTrial(state.label, "noop", Trial(
            config=state.incumbent)))
        choice = self._choose(state)
        if choice is None:
            if not state.converged:
                state.converged = True
                self._counts["converged"] += 1
                obs.counter("tune.online.converged").inc()
            return None
        kind, config = choice
        trial = measure(state.spec, self.machine, config, state.shape,
                        steps=self.config.trial_steps, budget=self._budget,
                        cache=self.cache, boundary=state.boundary,
                        model_score=state.scores.get(_config_key(config),
                                                     0.0))
        self._last_trial = time.monotonic()
        self._counts["trials"] += 1
        obs.counter("tune.online.trials").inc()
        obs.counter(f"tune.online.trials.kind.{kind}").inc()
        out = OnlineTrial(workload=state.label, kind=kind, trial=trial)
        if not trial.ok:
            self._counts["trial_failures"] += 1
            obs.counter("tune.online.trial_failures").inc()
            return out
        if obs.enabled():
            obs.histogram("tune.online.trial_ms").observe(
                trial.seconds * 1e3)
        if kind == "incumbent":
            state.incumbent_score = trial.mstencil_s
        else:
            ckey = _config_key(config)
            prev = state.results.get(ckey)
            if prev is None or trial.mstencil_s > prev.mstencil_s:
                state.results[ckey] = trial
        return self._maybe_promote(state, out)

    def converged(self) -> bool:
        """Whether every observed workload has finished exploring (or
        the lifetime trial budget ran out)."""
        with self._lock:
            states = list(self._states.values())
        if not states:
            return False
        if self._budget_spent():
            return True
        return all(s.converged for s in states)

    # -- background driving ----------------------------------------------------
    def start(self) -> None:
        """Spawn the background exploration thread (daemon; exceptions
        are counted, never propagated — tuning must not hurt serving)."""
        if self._thread is not None:
            raise TuneError("online tuner already started")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                try:
                    ran = self.step() is not None
                except Exception:  # noqa: BLE001 - never kill serving
                    obs.counter("tune.online.step_errors").inc()
                    ran = False
                if not ran or self.converged():
                    self._stop.wait(self.config.poll_interval_s)

        self._thread = threading.Thread(target=loop, daemon=True,
                                        name="repro-online-tune")
        self._thread.start()

    def stop(self, *, timeout_s: float = 10.0) -> None:
        """Signal and join the background thread (a trial in flight gets
        ``timeout_s`` to finish; the daemon thread is abandoned after)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=timeout_s)

    # -- internals -------------------------------------------------------------
    def _budget_spent(self) -> bool:
        return (self.config.max_trials is not None
                and self._counts["trials"] >= self.config.max_trials)

    def _pick_state(self) -> Optional[_Workload]:
        """Round-robin over workloads still exploring."""
        if self._budget_spent():
            return None
        with self._lock:
            open_keys = [k for k in self._order
                         if not self._states[k].converged]
            if not open_keys:
                return None
            state = self._states[open_keys[self._cursor % len(open_keys)]]
            self._cursor += 1
            return state

    def _ensure_candidates(self, state: _Workload) -> None:
        if state.candidates is not None:
            return
        space = enumerate_space(state.spec, self.machine, state.shape,
                                engines=self.config.engines,
                                exec_backends=self.config.exec_backends)
        ranked = rank_candidates(state.spec, self.machine, space,
                                 state.shape, steps=state.steps,
                                 cache=self.cache)
        incumbent_key = _config_key(state.incumbent)
        state.candidates = [c for c, _ in ranked
                            if _config_key(c) != incumbent_key]
        state.scores = {_config_key(c): s for c, s in ranked}

    def _choose(self, state: _Workload
                ) -> Optional[Tuple[str, TuneConfig]]:
        """Epsilon-greedy pick, or ``None`` once the workload is done.

        The incumbent itself is always measured first so contenders are
        compared against a same-harness number, not an offline one.
        """
        if state.incumbent_score is None:
            return "incumbent", state.incumbent
        untried = [c for c in state.candidates
                   if _config_key(c) not in state.tried]
        if untried:
            if self._rng.random() < self.config.epsilon:
                config = untried[self._rng.randrange(len(untried))]
                kind = "explore"
                self._counts["explore"] += 1
            else:
                config = untried[0]  # best model-ranked untried
                kind = "greedy"
                self._counts["greedy"] += 1
            state.tried.add(_config_key(config))
            return kind, config
        leader = state.leader()
        if leader is not None and state.confirms < self.config.confirm_trials:
            state.confirms += 1
            return "confirm", leader.config
        return None

    def _maybe_promote(self, state: _Workload,
                       out: OnlineTrial) -> OnlineTrial:
        """Promote the leading contender if it clears the margin — but
        only through the bitwise gate, and only while still idle."""
        leader = state.leader()
        if (leader is None or state.incumbent_score is None
                or leader.mstencil_s < (state.incumbent_score
                                        * self.config.promote_margin)):
            return out
        if not self._idle():
            # verification is real kernel work; defer it like a trial
            self._counts["gated"] += 1
            obs.counter("tune.online.gated").inc()
            return out
        verified = self._verify(state, leader.config)
        if not verified:
            state.rejected.add(_config_key(leader.config))
            self._counts["verify_failures"] += 1
            obs.counter("tune.online.verify_failures").inc()
            return OnlineTrial(out.workload, out.kind, out.trial,
                               promoted=False, verified=False)
        self._counts["verified"] += 1
        obs.counter("tune.online.verified").inc()
        self._prewarm(state, leader.config)
        record = TuningRecord(
            key=state.key, config=leader.config,
            mstencil_s=leader.mstencil_s, seconds=leader.seconds,
            steps=leader.steps,
            trials=(dict(leader.to_dict(), online=True, verified=True),),
            budget=self._budget.as_dict(),
        )
        landed = self.db.promote(record)
        if landed:
            self._counts["promotions"] += 1
            obs.counter("tune.online.promotions").inc()
        # either way this workload now chases the (possibly concurrent)
        # winner: adopt the leader locally so the margin test re-arms
        state.incumbent = leader.config
        state.incumbent_score = leader.mstencil_s
        return OnlineTrial(out.workload, out.kind, out.trial,
                           promoted=landed, verified=True)

    def _verify(self, state: _Workload, contender: TuneConfig) -> bool:
        """Bitwise gate: what the contender would *serve* must equal
        what the incumbent serves, exactly, on a seeded verification
        sweep.

        The serving path executes through the tiled/sharded reference
        executor (:func:`~repro.parallel.executor.run_parallel`), which
        is bitwise-invariant across tile shapes, worker counts, shard
        counts and temporal blocks by design — so any difference means
        a broken configuration, and it is never promoted.  (Plan-aware
        winners steer the *compile*, not the served numerics, so they
        verify against the same reference sweep.)"""
        try:
            want = self._run_config(state, state.incumbent)
            got = self._run_config(state, contender)
        except ReproError:
            return False
        return want.dtype == got.dtype and np.array_equal(want, got)

    def _run_config(self, state: _Workload,
                    config: TuneConfig) -> np.ndarray:
        """The interior ``config`` would serve for the seeded
        verification workload (mirrors the server's
        ``run_many``/``run_parallel`` dispatch)."""
        steps = self.config.verify_steps
        dtype = (np.float32 if self.machine.element_bytes == 4
                 else np.float64)
        grid = Grid.random(state.shape, state.spec.radius,
                           seed=self.config.verify_seed, dtype=dtype)
        if config.engine == "shard":
            out = run_parallel(state.spec, grid, steps,
                               shards=config.shards,
                               temporal_block=config.temporal_block,
                               workers=config.shards,
                               boundary=state.boundary,
                               backend=config.run_backend)
        elif config.engine == "tiled":
            out = run_parallel(state.spec, grid, steps,
                               tile_shape=config.tile_shape,
                               workers=config.workers,
                               boundary=state.boundary,
                               backend=config.run_backend)
        else:
            out = run_parallel(state.spec, grid, steps,
                               boundary=state.boundary)
        return out.interior.copy()

    def _prewarm(self, state: _Workload, config: TuneConfig) -> None:
        """Compile the winner into the shared cache *before* promotion,
        so no request ever pays the new incumbent's compile."""
        if not config.is_plan_aware:
            return  # tiled/shard winners reach no new compiled plan
        try:
            self.service.compile(state.spec, state.shape,
                                 time_fusion=config.time_fusion,
                                 use_sdf=config.use_sdf,
                                 backend=config.plan_backend)
        except ReproError:
            return  # the trial already ran it; a warm miss is harmless
        self._counts["prewarmed"] += 1
        obs.counter("tune.online.prewarmed").inc()

    # -- introspection ---------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Lifetime counters (kept independently of the obs registry so
        they survive ``obs.disable()``)."""
        with self._lock:
            out = dict(self._counts)
        out["open_workloads"] = sum(
            0 if s.converged else 1 for s in self._states.values())
        return out


__all__ = ["DEFAULT_ONLINE_ENGINES", "OnlineTrial", "OnlineTuneConfig",
           "OnlineTuner"]
