"""The autotuner's search space: every *legal* execution configuration
for one workload.

A workload is ``(StencilSpec, MachineConfig, interior shape)``; a
configuration (:class:`TuneConfig`) is one complete way to execute sweeps
of it.  Three execution engines exist today:

* ``"machine"`` — the cycle-exact SIMD machine
  (:meth:`repro.core.kernel.CompiledKernel.run`), parameterized by the
  plan (``time_fusion``, ``use_sdf``) and the execution backend
  (:data:`repro.vectorize.driver.EXEC_BACKENDS`);
* ``"numpy"`` — the fused/flattened numpy fast path
  (:meth:`~repro.core.kernel.CompiledKernel.run_numpy`), parameterized by
  the plan only;
* ``"tiled"`` — the parallel tile executor
  (:func:`repro.parallel.executor.run_parallel`), parameterized by the
  tile shape (from the :mod:`repro.tiling` ladder), the worker count and
  the executor backend;
* ``"shard"`` — the sharded outer-axis executor
  (:mod:`repro.shard`), parameterized by the shard count, the temporal
  block (sub-steps per halo exchange) and the executor backend;
* ``"scheme"`` — a named registry scheme
  (:func:`repro.schemes.generate` + the program driver), parameterized by
  the scheme name, the vertical fusion depth (``temporal`` only) and the
  execution backend.  Legality is scheme-aware: temporal depths are
  clamped by the spec's radius, and redundancy elimination is enumerated
  only where shifted-column sharing exists.

:func:`enumerate_space` rejects illegal points up front — an ITM depth
the butterfly window cannot cover (:func:`repro.core.itm.fusable`), a
machine-engine x extent below one vector block, a tile that does not fit
the grid — so the search engine never wastes a trial on a configuration
that cannot run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import MachineConfig
from ..core.itm import fusable
from ..errors import ReproError, TuneError
from ..parallel.executor import BACKENDS as RUN_BACKENDS
from ..stencils.spec import StencilSpec
from ..tuning import candidate_tiles
from ..vectorize.driver import EXEC_BACKENDS

#: the execution engines a configuration can select.
ENGINES: Tuple[str, ...] = ("machine", "numpy", "tiled", "shard", "scheme")

#: ITM depths the space considers (filtered by :func:`fusable` per spec).
FUSION_LADDER: Tuple[int, ...] = (1, 2, 4)

#: temporal-block depths the shard engine considers (sub-steps per halo
#: exchange; deeper blocks trade redundant ghost rows for fewer barriers).
TEMPORAL_LADDER: Tuple[int, ...] = (1, 2, 4)

#: registry scheme names the scheme engine searches by default (the two
#: related-work families; any :data:`repro.schemes.SCHEMES` name may be
#: passed explicitly).
DEFAULT_SCHEMES: Tuple[str, ...] = ("temporal", "redundancy")

#: vertical fusion depths the temporal scheme considers (filtered by
#: :func:`repro.vectorize.temporal.legal_fusion` per spec/machine).
SCHEME_FUSION_LADDER: Tuple[int, ...] = (1, 2, 4)


@dataclass(frozen=True)
class TuneConfig:
    """One point of the search space — a complete execution recipe.

    Fields irrelevant to the selected engine keep their defaults and are
    dropped from :meth:`as_dict`, so two configurations that execute
    identically are equal and share one database entry.
    """

    engine: str = "machine"
    time_fusion: int = 1
    use_sdf: bool = True
    exec_backend: str = "auto"             #: machine + scheme engines
    tile_shape: Optional[Tuple[int, ...]] = None  #: tiled engine only
    workers: int = 1                        #: tiled engine only
    run_backend: str = "thread"             #: tiled + shard engines
    shards: int = 1                         #: shard engine only
    temporal_block: int = 1                 #: shard engine only
    scheme: Optional[str] = None            #: scheme engine only
    scheme_fusion: int = 1                  #: scheme engine, temporal only

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise TuneError(
                f"unknown engine {self.engine!r}; known: {ENGINES}")
        if self.time_fusion < 1:
            raise TuneError("time_fusion must be >= 1")
        if self.scheme_fusion < 1:
            raise TuneError("scheme_fusion must be >= 1")
        if self.engine == "scheme":
            from ..schemes import SCHEMES
            if self.scheme is None:
                raise TuneError(
                    "scheme: scheme-engine configurations need a scheme name")
            if self.scheme not in SCHEMES:
                raise TuneError(
                    f"scheme: unknown scheme {self.scheme!r}; "
                    f"known: {SCHEMES}")
        else:
            if self.scheme is not None:
                raise TuneError(
                    f"scheme is a scheme-engine field (engine is "
                    f"{self.engine!r})")
            if self.scheme_fusion != 1:
                raise TuneError("scheme_fusion is a scheme-engine field")
        if self.exec_backend not in EXEC_BACKENDS:
            raise TuneError(
                f"unknown exec backend {self.exec_backend!r}; "
                f"known: {EXEC_BACKENDS}")
        if self.run_backend not in RUN_BACKENDS:
            raise TuneError(
                f"unknown run backend {self.run_backend!r}; "
                f"known: {RUN_BACKENDS}")
        if self.workers < 1:
            raise TuneError("workers must be >= 1")
        if self.engine == "tiled":
            if self.tile_shape is None:
                raise TuneError("tiled configurations need a tile_shape")
            object.__setattr__(
                self, "tile_shape",
                tuple(int(t) for t in self.tile_shape))
        if self.tile_shape is not None and any(
                t < 1 for t in self.tile_shape):
            raise TuneError("tile extents must be >= 1")
        if self.shards < 1:
            raise TuneError("shards must be >= 1")
        if self.temporal_block < 1:
            raise TuneError("temporal_block must be >= 1")
        if self.engine != "shard" and self.temporal_block != 1:
            raise TuneError("temporal_block is a shard-engine field")

    # -- identity --------------------------------------------------------------
    @property
    def is_plan_aware(self) -> bool:
        """Whether the engine executes a compiled plan (so ``time_fusion``
        / ``use_sdf`` matter)."""
        return self.engine in ("machine", "numpy")

    def as_dict(self) -> Dict[str, Any]:
        """Canonical JSON content: engine-relevant fields only."""
        if self.engine == "tiled":
            return {
                "engine": self.engine,
                "tile_shape": list(self.tile_shape),
                "workers": self.workers,
                "run_backend": self.run_backend,
            }
        if self.engine == "shard":
            return {
                "engine": self.engine,
                "shards": self.shards,
                "temporal_block": self.temporal_block,
                "run_backend": self.run_backend,
            }
        if self.engine == "scheme":
            return {
                "engine": self.engine,
                "scheme": self.scheme,
                "scheme_fusion": self.scheme_fusion,
                "exec_backend": self.exec_backend,
            }
        out: Dict[str, Any] = {
            "engine": self.engine,
            "time_fusion": self.time_fusion,
            "use_sdf": self.use_sdf,
        }
        if self.engine == "machine":
            out["exec_backend"] = self.exec_backend
        return out

    @classmethod
    def from_dict(cls, payload: Any) -> "TuneConfig":
        """Rebuild from :meth:`as_dict` content, raising
        :class:`~repro.errors.TuneError` on anything malformed (the
        database uses this to detect corrupted/stale entries)."""
        if not isinstance(payload, dict):
            raise TuneError("configuration payload is not an object")
        known = {"engine", "time_fusion", "use_sdf", "exec_backend",
                 "tile_shape", "workers", "run_backend", "shards",
                 "temporal_block", "scheme", "scheme_fusion"}
        unknown = set(payload) - known
        if unknown:
            raise TuneError(f"unknown configuration fields {sorted(unknown)}")
        kwargs = dict(payload)
        if "tile_shape" in kwargs and kwargs["tile_shape"] is not None:
            kwargs["tile_shape"] = tuple(int(t) for t in kwargs["tile_shape"])
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise TuneError(f"malformed configuration: {exc}") from None

    # -- integration helpers ---------------------------------------------------
    @property
    def plan_backend(self) -> str:
        """The SIMD-machine backend this configuration pins on a plan
        (``"auto"`` for engines that never reach the SIMD machine)."""
        return self.exec_backend if self.engine == "machine" else "auto"

    def plan_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for :func:`repro.core.planner.plan` /
        :meth:`repro.core.cache.KernelCache.plan`."""
        if not self.is_plan_aware:
            return {"time_fusion": 1, "use_sdf": True, "backend": "auto"}
        return {"time_fusion": self.time_fusion, "use_sdf": self.use_sdf,
                "backend": self.plan_backend}

    def label(self) -> str:
        """Compact human-readable form for tables and logs."""
        if self.engine == "tiled":
            tile = "x".join(map(str, self.tile_shape))
            return f"tiled[{tile}] w={self.workers} {self.run_backend}"
        if self.engine == "shard":
            return (f"shard[{self.shards}] s={self.temporal_block} "
                    f"{self.run_backend}")
        if self.engine == "scheme":
            depth = (f" s={self.scheme_fusion}"
                     if self.scheme_fusion > 1 else "")
            return f"scheme/{self.scheme}{depth} {self.exec_backend}"
        sdf = "sdf" if self.use_sdf else "no-sdf"
        if self.engine == "machine":
            return f"machine/{self.exec_backend} tf={self.time_fusion} {sdf}"
        return f"numpy tf={self.time_fusion} {sdf}"


def worker_ladder(limit: Optional[int] = None) -> List[int]:
    """1, 2, 4, ... up to ``limit`` (default: the host's CPU count,
    capped at 8 — beyond that the GIL-bound tile dispatch stops scaling)."""
    cap = limit if limit is not None else min(os.cpu_count() or 4, 8)
    out = [1]
    w = 2
    while w <= cap:
        out.append(w)
        w *= 2
    return out


def default_config(spec: StencilSpec, machine: MachineConfig) -> "TuneConfig":
    """The planner's static choice, as a configuration: the §4.3–§4.4
    deployment policy on the default SIMD-machine backend.  This is the
    baseline every search is measured against (and always receives an
    empirical trial)."""
    from ..core.planner import auto_fusion
    return TuneConfig(engine="machine",
                      time_fusion=auto_fusion(spec, machine),
                      use_sdf=True, exec_backend="auto")


def enumerate_space(
    spec: StencilSpec,
    machine: MachineConfig,
    shape: Sequence[int],
    *,
    engines: Sequence[str] = ENGINES,
    exec_backends: Sequence[str] = ("auto", "batch", "interp"),
    run_backends: Sequence[str] = ("thread",),
    max_workers: Optional[int] = None,
    tile_options_per_axis: int = 3,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
) -> List[TuneConfig]:
    """All legal configurations for ``spec`` over an interior ``shape``.

    ``engines`` / ``exec_backends`` / ``run_backends`` restrict the
    families considered (the CLI's ``--backend interp`` maps straight to
    ``exec_backends=("interp",)``).  The machine-engine default searches
    ``auto`` (the codegen→batch→interp ladder), pinned ``batch``, and
    pinned ``interp`` — ``codegen`` resolves identically to ``auto`` and
    would only duplicate trial points.  ``schemes`` names the registry
    schemes the scheme engine enumerates (default
    :data:`DEFAULT_SCHEMES`).  Illegal points never appear: infeasible
    ITM depths, machine-engine x extents below one ``2W`` block, tiles
    exceeding the grid, temporal fusion depths the radius cannot support,
    and redundancy elimination on specs without shifted-column sharing
    are all rejected here.
    """
    shape = tuple(int(n) for n in shape)
    if len(shape) != spec.ndim:
        raise TuneError(
            f"shape rank {len(shape)} != stencil ndim {spec.ndim}")
    if any(n < 1 for n in shape):
        raise TuneError(f"shape extents must be >= 1, got {shape}")
    for e in engines:
        if e not in ENGINES:
            raise TuneError(f"unknown engine {e!r}; known: {ENGINES}")
    for b in exec_backends:
        if b not in EXEC_BACKENDS:
            raise TuneError(
                f"unknown exec backend {b!r}; known: {EXEC_BACKENDS}")
    for b in run_backends:
        if b not in RUN_BACKENDS:
            raise TuneError(
                f"unknown run backend {b!r}; known: {RUN_BACKENDS}")
    from ..schemes import SCHEMES
    for s in schemes:
        if s not in SCHEMES:
            raise TuneError(
                f"schemes: unknown scheme name {s!r}; known: {SCHEMES}")

    width = machine.vector_elems
    depths = [d for d in FUSION_LADDER if fusable(spec, d, width=width)]
    configs: List[TuneConfig] = []
    seen = set()

    def add(cfg: TuneConfig) -> None:
        key = tuple(sorted(cfg.as_dict().items(),
                           key=lambda kv: kv[0]))
        key = repr(key)
        if key not in seen:
            seen.add(key)
            configs.append(cfg)

    if "machine" in engines and shape[-1] >= 2 * width:
        for depth in depths:
            for use_sdf in (True, False):
                for backend in exec_backends:
                    add(TuneConfig(engine="machine", time_fusion=depth,
                                   use_sdf=use_sdf, exec_backend=backend))
    if "numpy" in engines:
        for depth in depths:
            for use_sdf in (True, False):
                add(TuneConfig(engine="numpy", time_fusion=depth,
                               use_sdf=use_sdf))
    if "tiled" in engines:
        tiles = candidate_tiles(shape, per_axis_limit=tile_options_per_axis)
        for tile in tiles:
            if any(t > n for t, n in zip(tile, shape)):
                continue  # a tile larger than the grid cannot partition it
            for workers in worker_ladder(max_workers):
                for backend in run_backends:
                    add(TuneConfig(engine="tiled", tile_shape=tile,
                                   workers=workers, run_backend=backend))
    if "shard" in engines:
        # 1 shard duplicates the serial engines; the outer extent bounds
        # the partition (one row per shard at least).  The ladder follows
        # the *modeled* machine, not the host: shard workers are whole
        # processes doing numpy sweeps (not GIL-bound tile dispatch), and
        # the tuner ranks configurations for the target machine.
        shard_cap = (max_workers if max_workers is not None
                     else min(machine.total_cores, 8))
        for shards in worker_ladder(shard_cap):
            if shards == 1 or shards > shape[0]:
                continue
            for s in TEMPORAL_LADDER:
                for backend in run_backends:
                    add(TuneConfig(engine="shard", shards=shards,
                                   temporal_block=s, run_backend=backend))
    if "scheme" in engines:
        from ..schemes import scheme_block, scheme_halo
        from ..vectorize.redundancy import has_sharing
        from ..vectorize.temporal import legal_fusion

        def halo_fits(halo) -> bool:
            # periodic refills need halo <= interior on every axis
            return all(h <= n for h, n in zip(halo, shape))

        for name in schemes:
            if name == "redundancy" and not has_sharing(spec):
                continue  # no shifted column shared by >= 2 rows
            depths = (
                [d for d in SCHEME_FUSION_LADDER
                 if legal_fusion(spec, machine, d)]
                if name == "temporal" else [1]
            )
            for depth in depths:
                try:
                    if shape[-1] < scheme_block(name, machine):
                        continue
                    tf = depth if name == "temporal" else None
                    if not halo_fits(scheme_halo(name, spec, machine,
                                                 time_fusion=tf)):
                        continue
                except ReproError:
                    continue  # the scheme refuses this spec (e.g. shape)
                for backend in exec_backends:
                    add(TuneConfig(engine="scheme", scheme=name,
                                   scheme_fusion=depth,
                                   exec_backend=backend))
    return configs


__all__ = [
    "DEFAULT_SCHEMES",
    "ENGINES",
    "FUSION_LADDER",
    "SCHEME_FUSION_LADDER",
    "TEMPORAL_LADDER",
    "TuneConfig",
    "default_config",
    "enumerate_space",
    "worker_ladder",
]
