"""The persistent tuning database.

A :class:`TuningDB` records the winning :class:`~repro.tune.space.TuneConfig`
per *workload* — ``(spec, machine, interior shape, boundary)`` — plus the
measurement provenance that justified it, so a repeat workload skips the
empirical search entirely.

The layout mirrors the kernel compile cache it lives next to
(:mod:`repro.core.cache`): one JSON file per entry in a directory
(``<cache_dir>/tuning`` by default), content-addressed with the same
SHA-256-over-canonical-JSON keys (:func:`workload_key`), written
atomically, and **never trusted on read** — any entry that fails to
parse or validate (unknown format version, key mismatch, malformed
configuration, non-finite score) is counted in ``discards``, deleted,
and the workload is simply re-tuned.

``db_dir=None`` keeps the database purely in memory (used by services
without a cache directory, and by tests).

**Concurrent promotion.**  :meth:`TuningDB.promote` is the online
tuner's write path and must survive many processes landing winners at
once.  A read-modify-write on the entry file would let two writers race
(each reads the old winner, each writes, one update is lost), so
promotions use the kernel cache's per-writer delta-file discipline
instead: every promotion writes its *own* ``<key>.p-<pid>-<uuid>.json``
file atomically, and readers merge the base entry with every delta,
keeping the highest-throughput record.  No file is ever rewritten in
place, so no update can be lost.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import MachineConfig
from ..core.cache import (
    default_cache_dir,
    digest,
    machine_fingerprint,
    read_json,
    spec_fingerprint,
    write_json_atomic,
)
from ..errors import TuneError
from ..stencils.spec import StencilSpec
from .space import TuneConfig

#: bump when the on-disk record layout changes; older entries re-tune.
DB_FORMAT = 1

#: separates a workload key from a promotion delta's writer suffix.
#: Keys are SHA-256 hex (no dots), so ``name.split(".", 1)[0]`` always
#: recovers the key from either ``<key>.json`` or ``<key>.p-*.json``.
PROMOTE_INFIX = ".p-"


def default_tuning_dir() -> str:
    """``$REPRO_TUNING_DIR``, else ``tuning/`` inside the kernel cache
    directory (so one cache location holds both artifact kinds)."""
    env = os.environ.get("REPRO_TUNING_DIR")
    if env:
        return env
    return os.path.join(default_cache_dir(), "tuning")


def workload_key(spec: StencilSpec, machine: MachineConfig,
                 shape: Sequence[int], *, boundary: str = "periodic") -> str:
    """Content hash identifying one tuning workload.

    Like :func:`repro.core.cache.plan_key`, the key covers the canonical
    JSON of every input — any change to the spec, the machine, the
    interior shape, or the boundary produces a different key, so stale
    winners are unreachable by construction.
    """
    return digest({
        "kind": "tuning",
        "spec": spec_fingerprint(spec),
        "machine": machine_fingerprint(machine),
        "shape": [int(n) for n in shape],
        "boundary": boundary,
    })


@dataclass(frozen=True)
class TuningRecord:
    """One stored winner plus the evidence for it."""

    key: str
    config: TuneConfig
    mstencil_s: float            #: the winner's measured throughput
    seconds: float               #: the winner's median trial time
    steps: int                   #: sweeps each trial executed
    trials: Tuple[Dict[str, Any], ...] = ()  #: full measurement provenance
    budget: Dict[str, Any] = field(default_factory=dict)
    created: float = field(default_factory=time.time)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": DB_FORMAT,
            "key": self.key,
            "config": self.config.as_dict(),
            "mstencil_s": self.mstencil_s,
            "seconds": self.seconds,
            "steps": self.steps,
            "trials": list(self.trials),
            "budget": dict(self.budget),
            "created": self.created,
        }

    @classmethod
    def from_dict(cls, payload: Any, *, key: str) -> "TuningRecord":
        """Parse and validate a stored entry; raises
        :class:`~repro.errors.TuneError` on anything suspect."""
        if not isinstance(payload, dict):
            raise TuneError("record is not an object")
        if payload.get("format") != DB_FORMAT:
            raise TuneError(
                f"record format {payload.get('format')!r} != {DB_FORMAT}")
        if payload.get("key") != key:
            raise TuneError("record key does not echo its address")
        config = TuneConfig.from_dict(payload.get("config"))
        try:
            mstencil_s = float(payload["mstencil_s"])
            seconds = float(payload["seconds"])
            steps = int(payload["steps"])
        except (KeyError, TypeError, ValueError) as exc:
            raise TuneError(f"malformed measurement fields: {exc}") from None
        if not (mstencil_s > 0.0) or not (seconds > 0.0) or steps < 1:
            raise TuneError("non-positive measurement in record")
        trials = payload.get("trials", [])
        if not isinstance(trials, list):
            raise TuneError("trials provenance is not a list")
        return cls(key=key, config=config, mstencil_s=mstencil_s,
                   seconds=seconds, steps=steps, trials=tuple(trials),
                   budget=dict(payload.get("budget", {}) or {}),
                   created=float(payload.get("created", 0.0)))


class TuningDB:
    """Directory-backed (or in-memory) store of :class:`TuningRecord`s.

    Thread-safe.  ``hits``/``misses``/``writes``/``discards`` counters
    mirror the kernel cache's stats surface.
    """

    def __init__(self, db_dir: Optional[str] = None) -> None:
        self.db_dir = db_dir
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.discards = 0
        self.promotions = 0
        self._lock = threading.RLock()
        self._memory: Dict[str, TuningRecord] = {}
        if db_dir is not None:
            os.makedirs(db_dir, exist_ok=True)

    # -- lookup ----------------------------------------------------------------
    def get(self, key: str) -> Optional[TuningRecord]:
        """The stored record for ``key``, or ``None``.  Merges the base
        entry with any promotion deltas (best throughput wins);
        corrupted/stale disk entries are discarded (and deleted) — never
        trusted, never fatal."""
        with self._lock:
            rec = self._memory.get(key)
            if rec is not None:
                self.hits += 1
                return rec
        rec = self._read_merged(key)
        if rec is None:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
            self._memory[key] = rec
        return rec

    def _read_merged(self, key: str) -> Optional[TuningRecord]:
        """Best valid on-disk record for ``key`` across the base entry
        and every promotion delta (invalid files are discarded)."""
        paths: List[str] = []
        base = self._entry_path(key)
        if base is not None and os.path.exists(base):
            paths.append(base)
        paths.extend(self._delta_paths(key))
        best: Optional[TuningRecord] = None
        for path in paths:
            payload = read_json(path)
            try:
                if payload is None:
                    raise TuneError("unreadable entry")
                rec = TuningRecord.from_dict(payload, key=key)
            except TuneError:
                with self._lock:
                    self.discards += 1
                try:
                    os.remove(path)
                except OSError:
                    pass
                continue
            if best is None or rec.mstencil_s > best.mstencil_s:
                best = rec
        return best

    def _delta_paths(self, key: str) -> List[str]:
        """Promotion delta files for ``key``, name order."""
        if self.db_dir is None:
            return []
        prefix = key + PROMOTE_INFIX
        try:
            names = os.listdir(self.db_dir)
        except OSError:
            return []
        return [os.path.join(self.db_dir, name) for name in sorted(names)
                if name.startswith(prefix) and name.endswith(".json")]

    def lookup(self, spec: StencilSpec, machine: MachineConfig,
               shape: Sequence[int], *,
               boundary: str = "periodic") -> Optional[TuningRecord]:
        """:meth:`get` keyed straight from workload content."""
        return self.get(workload_key(spec, machine, shape,
                                     boundary=boundary))

    # -- storage ---------------------------------------------------------------
    def put(self, record: TuningRecord) -> None:
        with self._lock:
            self._memory[record.key] = record
        path = self._entry_path(record.key)
        if path is None:
            return
        try:
            write_json_atomic(path, record.to_dict())
        except OSError:
            return  # a read-only directory degrades to memory-only
        with self._lock:
            self.writes += 1

    def promote(self, record: TuningRecord) -> bool:
        """Land ``record`` iff it beats the current winner for its key;
        returns whether it landed.

        Lock-free across processes: instead of rewriting the base entry
        (a read-modify-write that can lose a concurrent writer's
        update), each promotion appends its own atomic delta file — see
        the module docstring.  Readers take the best of base + deltas,
        so two writers promoting concurrently (same key or different
        keys) both land, and the faster record always wins.
        """
        with self._lock:
            current = self._memory.get(record.key)
        if current is None:
            current = self._read_merged(record.key)
        if current is not None and current.mstencil_s >= record.mstencil_s:
            return False
        with self._lock:
            self._memory[record.key] = record
            self.promotions += 1
        if self.db_dir is not None:
            path = os.path.join(
                self.db_dir,
                f"{record.key}{PROMOTE_INFIX}"
                f"{os.getpid()}-{uuid.uuid4().hex[:8]}.json")
            try:
                write_json_atomic(path, record.to_dict())
            except OSError:
                return True  # a read-only directory degrades to memory-only
            with self._lock:
                self.writes += 1
        return True

    # -- maintenance -----------------------------------------------------------
    def _entry_path(self, key: str) -> Optional[str]:
        if self.db_dir is None:
            return None
        return os.path.join(self.db_dir, f"{key}.json")

    def entries(self) -> List[str]:
        """Keys present on disk — promotion deltas fold into their base
        key (memory-only records included when no directory is
        configured)."""
        if self.db_dir is None:
            with self._lock:
                return sorted(self._memory)
        return sorted({
            name.split(".", 1)[0] for name in os.listdir(self.db_dir)
            if name.endswith(".json")})

    def clear(self) -> int:
        """Drop every record; returns the number of disk entries removed."""
        removed = 0
        with self._lock:
            self._memory.clear()
        if self.db_dir is not None and os.path.isdir(self.db_dir):
            for name in os.listdir(self.db_dir):
                if name.endswith(".json"):
                    try:
                        os.remove(os.path.join(self.db_dir, name))
                        removed += 1
                    except OSError:
                        pass
        return removed

    def stats_dict(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "discards": self.discards,
                "promotions": self.promotions,
                "entries": len(self.entries()),
            }


__all__ = [
    "DB_FORMAT",
    "PROMOTE_INFIX",
    "TuningDB",
    "TuningRecord",
    "default_tuning_dir",
    "workload_key",
]
