"""The two-stage search engine: analytic ranking, then empirical trials.

**Stage 1 — model guidance.**  Every candidate gets a score from the
analytic layer the repo already trusts: plan-aware engines are costed by
:class:`~repro.machine.perfmodel.PerformanceModel` on the program the
kernel cache lowers for the actual workload geometry, and tiled
configurations by :class:`~repro.parallel.simulator.MulticoreModel` with
the candidate's blocking.  Because the analytic models predict
*hypothetical hardware* throughput while trials measure *Python
wall-clock*, scores are scaled by per-engine wall-clock priors (batch
execution ≈20× the interpreter per ``benchmarks/bench_machine.py``; the
numpy paths orders of magnitude beyond both).  The priors only order
candidates for pruning — empirical timing always has the last word.

**Stage 2 — empirical timing.**  The top-ranked candidates (stratified
across engine families, the planner's default always included) are timed
through the kernel cache: ``warmup`` untimed runs, then the median of
``repeats`` timed runs, normalized to MStencil/s so configurations with
different fused depths compare fairly.  A :class:`TuneBudget` bounds the
stage by trial count and wall clock, enforces a per-trial timeout, and
stops early once ``patience`` consecutive trials fail to improve on the
incumbent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from statistics import median
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..config import MachineConfig
from ..core.cache import KernelCache
from ..core.jigsaw import required_halo
from ..core.kernel import CompiledKernel
from ..errors import ReproError, TuneError
from ..faults import failure_reason
from ..machine.perfmodel import PerformanceModel
from ..parallel.executor import run_parallel
from ..parallel.simulator import MulticoreModel, ParallelSetup
from ..schemes import generate as generate_scheme
from ..schemes import model_cost, model_program, scheme_halo
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec
from ..vectorize.driver import run_program
from .space import TuneConfig

#: crude wall-clock priors per engine family (relative to the
#: per-instruction interpreter = 1).  Their only job is candidate
#: *ordering* before the empirical stage; see the module docstring.
WALLCLOCK_PRIORS: Dict[str, float] = {
    "machine/interp": 1.0,
    "machine/batch": 20.0,
    "machine/auto": 20.0,
    "machine/codegen": 20.0,
    "scheme/interp": 1.0,
    "scheme/batch": 20.0,
    "scheme/auto": 20.0,
    "scheme/codegen": 20.0,
    "numpy": 400.0,
    "tiled": 400.0,
    "shard": 400.0,
}


@dataclass(frozen=True)
class TuneBudget:
    """Bounds on the empirical stage."""

    max_trials: int = 8             #: configurations to time at most
    max_seconds: Optional[float] = None  #: wall-clock cap for the stage
    warmup: int = 1                 #: untimed runs per trial
    repeats: int = 3                #: timed runs per trial (median taken)
    trial_timeout_s: float = 60.0   #: per-trial wall-clock cap
    patience: int = 4               #: trials without improvement -> stop

    def __post_init__(self) -> None:
        if self.max_trials < 1:
            raise TuneError("max_trials must be >= 1")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise TuneError("max_seconds must be positive")
        if self.warmup < 0 or self.repeats < 1:
            raise TuneError("warmup must be >= 0 and repeats >= 1")
        if self.trial_timeout_s <= 0:
            raise TuneError("trial_timeout_s must be positive")
        if self.patience < 1:
            raise TuneError("patience must be >= 1")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "max_trials": self.max_trials,
            "max_seconds": self.max_seconds,
            "warmup": self.warmup,
            "repeats": self.repeats,
            "trial_timeout_s": self.trial_timeout_s,
            "patience": self.patience,
        }


@dataclass(frozen=True)
class Trial:
    """One empirical measurement of one configuration."""

    config: TuneConfig
    seconds: float = 0.0          #: median timed-run seconds
    mstencil_s: float = 0.0       #: points * steps / median / 1e6
    steps: int = 0                #: sweeps actually executed per run
    repeats: int = 0              #: timed runs completed
    model_score: float = 0.0      #: stage-1 score (prior-scaled GStencil/s)
    timed_out: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.repeats > 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config.as_dict(),
            "seconds": self.seconds,
            "mstencil_s": self.mstencil_s,
            "steps": self.steps,
            "repeats": self.repeats,
            "model_score": self.model_score,
            "timed_out": self.timed_out,
            "error": self.error,
        }


def trial_steps(config: TuneConfig, steps: int) -> int:
    """``steps`` rounded up to the configuration's fused depth (throughput
    is normalized per update, so deeper fusion is not advantaged)."""
    if config.is_plan_aware:
        s = config.time_fusion
    elif config.engine == "scheme":
        s = config.scheme_fusion
    else:
        s = 1
    return -(-steps // s) * s


def _scheme_fusion_arg(config: TuneConfig):
    """The ``time_fusion`` argument for the scheme registry: explicit for
    ``temporal`` (the searched depth), ``None`` elsewhere (schemes pick
    their own)."""
    return config.scheme_fusion if config.scheme == "temporal" else None


def _family(config: TuneConfig) -> str:
    if config.engine == "machine":
        return f"machine/{config.exec_backend}"
    if config.engine == "scheme":
        return f"scheme/{config.exec_backend}"
    return config.engine


def model_score(
    spec: StencilSpec,
    machine: MachineConfig,
    config: TuneConfig,
    shape: Sequence[int],
    *,
    steps: int,
    cache: KernelCache,
) -> float:
    """Stage-1 score: analytic GStencil/s for the workload under
    ``config``, scaled by the engine's wall-clock prior.  Configurations
    the models reject score ``-inf`` (pruned before any trial)."""
    points = 1
    for n in shape:
        points *= int(n)
    prior = WALLCLOCK_PRIORS.get(_family(config), 1.0)
    try:
        if config.is_plan_aware:
            plan = cache.plan(spec, machine, **config.plan_kwargs())
            grid = Grid(tuple(shape),
                        required_halo(spec, machine,
                                      time_fusion=plan.time_fusion))
            program = cache.program(plan, grid)
            model = PerformanceModel(machine)
            est = model.estimate(model.kernel_cost(program),
                                 points=points,
                                 steps=trial_steps(config, steps))
            return est.gstencil_s * prior
        if config.engine == "scheme":
            program = model_program(config.scheme, spec, machine,
                                    time_fusion=_scheme_fusion_arg(config))
            model = PerformanceModel(machine)
            est = model.estimate(model.kernel_cost(program),
                                 points=points,
                                 steps=trial_steps(config, steps))
            return est.gstencil_s * prior
        if config.engine == "shard":
            est = MulticoreModel(machine).estimate(
                model_cost("jigsaw", spec, machine), spec,
                points=points, steps=steps,
                cores=min(config.shards, machine.total_cores),
                setup=ParallelSetup(time_depth=config.temporal_block),
            )
            return est.gstencil_s * prior
        est = MulticoreModel(machine).estimate(
            model_cost("jigsaw", spec, machine), spec,
            points=points, steps=steps,
            cores=min(config.workers, machine.total_cores),
            setup=ParallelSetup(tile_shape=config.tile_shape),
        )
        return est.gstencil_s * prior
    except ReproError:
        return float("-inf")


def rank_candidates(
    spec: StencilSpec,
    machine: MachineConfig,
    candidates: Sequence[TuneConfig],
    shape: Sequence[int],
    *,
    steps: int,
    cache: KernelCache,
) -> List[Tuple[TuneConfig, float]]:
    """Every candidate with its stage-1 score, best first (infeasible
    ``-inf`` candidates dropped)."""
    scored = [
        (c, model_score(spec, machine, c, shape, steps=steps, cache=cache))
        for c in candidates
    ]
    scored = [cs for cs in scored if cs[1] != float("-inf")]
    scored.sort(key=lambda cs: -cs[1])
    return scored


def select_top(
    ranked: Sequence[Tuple[TuneConfig, float]],
    k: int,
    *,
    always: Sequence[TuneConfig] = (),
) -> List[Tuple[TuneConfig, float]]:
    """Stratified top-``k``: round-robin across engine families in rank
    order, so one optimistic prior cannot monopolize the trial budget.
    ``always`` configurations (the planner's default) are force-included
    up front, over and above ``k``."""
    by_family: Dict[str, List[Tuple[TuneConfig, float]]] = {}
    for cfg, score in ranked:
        by_family.setdefault(_family(cfg), []).append((cfg, score))
    picked: List[Tuple[TuneConfig, float]] = []
    seen = set()

    def push(cfg: TuneConfig, score: float) -> None:
        key = repr(sorted(cfg.as_dict().items()))
        if key not in seen:
            seen.add(key)
            picked.append((cfg, score))

    score_of = {repr(sorted(c.as_dict().items())): s for c, s in ranked}
    for cfg in always:
        push(cfg, score_of.get(repr(sorted(cfg.as_dict().items())), 0.0))
    forced = len(picked)
    families = sorted(by_family, key=lambda f: -by_family[f][0][1])
    row = 0
    while len(picked) - forced < k:
        advanced = False
        for fam in families:
            if len(picked) - forced >= k:
                break
            if row < len(by_family[fam]):
                push(*by_family[fam][row])
                advanced = True
        if not advanced:
            break
        row += 1
    return picked


def measure(
    spec: StencilSpec,
    machine: MachineConfig,
    config: TuneConfig,
    shape: Sequence[int],
    *,
    steps: int,
    budget: TuneBudget,
    cache: KernelCache,
    boundary: str = "periodic",
    seed: int = 1234,
    model_score: float = 0.0,
    deadline: Optional[float] = None,
) -> Trial:
    """One empirical trial: warmup, then median-of-``repeats`` timing.

    Respects the per-trial timeout and an optional absolute ``deadline``
    (wall-clock budget) by cutting remaining repeats — the measurement
    already taken is kept, so even a timed-out trial reports a score.
    Execution failures become ``error`` trials, never exceptions.
    """
    shape = tuple(int(n) for n in shape)
    steps_eff = trial_steps(config, steps)
    points = 1
    for n in shape:
        points *= n
    t_start = time.perf_counter()

    def out_of_time() -> bool:
        now = time.perf_counter()
        if now - t_start > budget.trial_timeout_s:
            return True
        return deadline is not None and now > deadline

    dtype = np.float32 if machine.element_bytes == 4 else np.float64
    try:
        if config.is_plan_aware:
            halo = required_halo(spec, machine,
                                 time_fusion=config.time_fusion)
            kernel: CompiledKernel = cache.compile(
                spec, machine, Grid(shape, halo, dtype=dtype),
                **config.plan_kwargs())
            grid = Grid.random(shape, halo, seed=seed, dtype=dtype)

            def run_once() -> None:
                if config.engine == "machine":
                    kernel.run(grid, steps_eff, boundary=boundary,
                               backend=config.exec_backend)
                else:
                    kernel.run_numpy(grid, steps_eff, boundary=boundary)
        elif config.engine == "scheme":
            tf = _scheme_fusion_arg(config)
            halo = scheme_halo(config.scheme, spec, machine, time_fusion=tf)
            grid = Grid.random(shape, halo, seed=seed, dtype=dtype)
            program = generate_scheme(config.scheme, spec, machine, grid,
                                      time_fusion=tf)
            # schemes that pick their own depth (e.g. redundancy stays at
            # 1, a future scheme may not) can disagree with scheme_fusion;
            # re-round so run_program accepts the step count
            sp = program.steps_per_iter
            steps_eff = -(-steps_eff // sp) * sp

            def run_once() -> None:
                run_program(program, grid, steps_eff, boundary=boundary,
                            backend=config.exec_backend)
        elif config.engine == "shard":
            grid = Grid.random(shape, spec.radius, seed=seed, dtype=dtype)

            def run_once() -> None:
                run_parallel(spec, grid, steps_eff,
                             shards=config.shards,
                             temporal_block=config.temporal_block,
                             workers=config.shards,
                             boundary=boundary,
                             backend=config.run_backend)
        else:
            grid = Grid.random(shape, spec.radius, seed=seed, dtype=dtype)

            def run_once() -> None:
                run_parallel(spec, grid, steps_eff,
                             tile_shape=config.tile_shape,
                             workers=config.workers,
                             boundary=boundary,
                             backend=config.run_backend)

        for _ in range(budget.warmup):
            if out_of_time():
                break
            run_once()
        times: List[float] = []
        timed_out = False
        for _ in range(budget.repeats):
            if times and out_of_time():
                timed_out = True
                break
            t0 = time.perf_counter()
            run_once()
            times.append(time.perf_counter() - t0)
            if out_of_time():
                timed_out = len(times) < budget.repeats
                break
    except ReproError as exc:
        # injected faults subclass ReproError, so a faulted trial is
        # recorded as a failure (never poisons the winner DB) and lands
        # in the obs failure taxonomy under its reason bucket
        obs.counter("tune.trial_failures").inc()
        obs.counter(
            f"tune.trial_failures.reason.{failure_reason(exc)}").inc()
        return Trial(config=config, steps=steps_eff,
                     model_score=model_score, error=str(exc))
    if not times:
        return Trial(config=config, steps=steps_eff, timed_out=True,
                     model_score=model_score, error="trial timed out")
    med = median(times)
    return Trial(
        config=config,
        seconds=med,
        mstencil_s=points * steps_eff / med / 1e6,
        steps=steps_eff,
        repeats=len(times),
        model_score=model_score,
        timed_out=timed_out,
    )


__all__ = [
    "Trial",
    "TuneBudget",
    "WALLCLOCK_PRIORS",
    "measure",
    "model_score",
    "rank_candidates",
    "select_top",
    "trial_steps",
]
