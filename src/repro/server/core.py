"""The asyncio stencil server: deadline micro-batching over the service.

:class:`StencilServer` is the front door the ROADMAP's "millions of
users" goal asks for.  It accepts concurrent stencil jobs
(``await server.submit(job, tenant=..., deadline_s=...)``), admits or
rejects them through :class:`~repro.server.admission.AdmissionController`
(per-tenant token buckets + a global queue-depth ceiling), coalesces
compatible admitted jobs into micro-batches, and executes each batch as
one :meth:`~repro.service.KernelService.compile_many` /
:meth:`~repro.service.KernelService.run_many` call on a thread-pool
executor so the event loop never blocks on kernel work.

**Micro-batching.**  Jobs with the same batch key (stencil spec, shape,
steps, boundary) join one open batch.  A batch flushes when it fills
(``max_batch``), when its window expires (``batch_window_s`` after the
first job arrived), or — the deadline-aware part — early enough that
its most urgent job can still meet its deadline
(``deadline - deadline_margin_s``).  Due batches dispatch in deadline
order, so urgent work is never stuck behind a lazier batch that
happened to open first.

**Overload ladder.**  Degradation rides the queue occupancy
(admitted-but-unfinished / ``max_queue_depth``):

1. occupancy >= ``shed_occupancy`` — batch size is shed to a quarter of
   ``max_batch`` so each flush returns sooner (lower per-batch latency,
   faster feedback to the admission gate);
2. occupancy >= ``interp_occupancy`` — compiles pin the interpreter
   backend (skipping codegen emission keeps the compile path cheap;
   interp is bitwise-identical, so results never change);
3. occupancy at 1.0 — admission rejects with
   :class:`~repro.server.admission.ServerOverloaded` (the fast path:
   nothing is enqueued, nothing times out).

The underlying :class:`~repro.service.KernelService` ladders
(``failure_policy="degrade"``, retries, per-task timeouts) still apply
inside each batch, and the two server fault sites (``server.enqueue``,
``server.batch_flush``) are retried against injected faults so a chaos
run returns bitwise-identical responses.

**Online autotuning** (``online_tune=True``).  A background
:class:`~repro.tune.online.OnlineTuner` watches every admitted workload
and explores contender configurations from the autotuner search space —
but only while the server is completely idle (no admitted request in
flight, no batch open), so a trial can never delay a request.
Promoted winners (bitwise-verified against the incumbent, compile cache
pre-warmed) land in the service's shared
:class:`~repro.tune.db.TuningDB`; each batch then runs on the stored
winner for its workload — plan-aware winners steer the compile, tiled
and sharded winners steer the executor.  Under the forced-interp
overload rung tuned compiles are skipped (cheapness wins during
overload; results are bitwise-identical either way).

Everything is instrumented under the ``server.*`` taxonomy (see
``docs/architecture.md``, Serving layer).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..config import GENERIC_AVX2, MachineConfig
from ..errors import ReproError
from ..faults import FaultInjected, fault_point
from ..service import CompileRequest, KernelService, SweepJob
from ..stencils.grid import Grid
from ..stencils.spec import StencilSpec
from ..tune.online import OnlineTuneConfig, OnlineTuner
from .admission import AdmissionController, ServerOverloaded

#: how far batch size is shed under overload rung 1 (divisor of
#: ``max_batch``, floored at 1).
SHED_DIVISOR = 4


@dataclass(frozen=True)
class StencilJob:
    """One serving request: ``steps`` sweeps of ``spec`` over a grid.

    The input grid is either supplied explicitly (``grid=``) or derived
    deterministically from ``seed`` (``Grid.random(shape, spec.radius,
    seed=seed)``) — the seeded form is what the wire protocol and the
    load generator use, and it makes responses reproducible for bitwise
    verification.
    """

    spec: StencilSpec
    shape: Tuple[int, ...]
    steps: int
    seed: Optional[int] = None
    grid: Optional[Grid] = field(default=None, compare=False)
    boundary: str = "periodic"
    value: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape",
                           tuple(int(s) for s in self.shape))
        if len(self.shape) != self.spec.ndim:
            raise ReproError(
                f"shape {self.shape} is {len(self.shape)}-d but "
                f"{self.spec.name} is {self.spec.ndim}-d")
        if any(s < 1 for s in self.shape):
            raise ReproError("shape extents must be >= 1")
        if self.steps < 0:
            raise ReproError("steps must be >= 0")
        if (self.seed is None) == (self.grid is None):
            raise ReproError("pass exactly one of seed= or grid=")

    def batch_key(self) -> Tuple:
        """Jobs sharing this key may ride one micro-batch (one compile,
        one ``run_many`` dispatch)."""
        return (self.spec, self.shape, self.steps, self.boundary,
                self.value)

    def materialize(self) -> Grid:
        if self.grid is not None:
            return self.grid
        return Grid.random(self.shape, self.spec.radius, seed=self.seed)


@dataclass
class JobResult:
    """One completed request."""

    grid: Grid                   #: the swept grid (interior = the answer)
    tenant: str
    latency_s: float             #: submit-to-completion wall clock
    batch_size: int              #: jobs that shared this flush
    deadline_met: bool = True


class _Pending:
    __slots__ = ("job", "tenant", "deadline", "t0", "future")

    def __init__(self, job: StencilJob, tenant: str,
                 deadline: Optional[float], t0: float,
                 future: "asyncio.Future") -> None:
        self.job = job
        self.tenant = tenant
        self.deadline = deadline          #: absolute monotonic, or None
        self.t0 = t0
        self.future = future


class _Batch:
    __slots__ = ("key", "jobs", "created", "due")

    def __init__(self, key: Tuple, created: float, due: float) -> None:
        self.key = key
        self.jobs: List[_Pending] = []
        self.created = created
        self.due = due                    #: earliest flush obligation


class StencilServer:
    """Async multi-tenant front door over a :class:`KernelService`.

    Use as an async context manager::

        async with StencilServer(machine=GENERIC_AVX2) as server:
            result = await server.submit(job, tenant="acme",
                                         deadline_s=0.5)

    All public methods must be called from the event-loop thread that
    entered the server (the executor threads only run kernel work).
    """

    def __init__(
        self,
        service: Optional[KernelService] = None,
        *,
        machine: Optional[MachineConfig] = None,
        max_queue_depth: int = 256,
        quota_rate: float = float("inf"),
        quota_burst: Optional[float] = None,
        batch_window_s: float = 0.005,
        max_batch: int = 16,
        deadline_margin_s: float = 0.002,
        shed_occupancy: float = 0.5,
        interp_occupancy: float = 0.75,
        executor_workers: int = 4,
        fault_retries: int = 3,
        online_tune: bool = False,
        online_tune_config: Optional[OnlineTuneConfig] = None,
        **service_kwargs,
    ) -> None:
        if service is not None and (machine is not None or service_kwargs):
            raise ReproError(
                "pass either a ready KernelService or construction "
                "keywords, not both")
        if not batch_window_s >= 0:
            raise ReproError("batch_window_s must be >= 0")
        if not isinstance(max_batch, int) or max_batch < 1:
            raise ReproError("max_batch must be an integer >= 1")
        if not deadline_margin_s >= 0:
            raise ReproError("deadline_margin_s must be >= 0")
        if not 0.0 < shed_occupancy <= 1.0:
            raise ReproError("shed_occupancy must be in (0, 1]")
        if not 0.0 < interp_occupancy <= 1.0:
            raise ReproError("interp_occupancy must be in (0, 1]")
        if shed_occupancy > interp_occupancy:
            raise ReproError(
                "shed_occupancy must not exceed interp_occupancy "
                "(shedding is the milder rung)")
        if not isinstance(executor_workers, int) or executor_workers < 1:
            raise ReproError("executor_workers must be an integer >= 1")
        if not isinstance(fault_retries, int) or fault_retries < 0:
            raise ReproError("fault_retries must be an integer >= 0")
        if not isinstance(online_tune, bool):
            raise ReproError("online_tune must be a bool")
        if online_tune_config is not None:
            if not isinstance(online_tune_config, OnlineTuneConfig):
                raise ReproError(
                    "online_tune_config must be an OnlineTuneConfig")
            if not online_tune:
                raise ReproError(
                    "online_tune_config requires online_tune=True")
        if service is None:
            service_kwargs.setdefault("failure_policy", "degrade")
            service_kwargs.setdefault("retries", 2)
            service = KernelService(machine or GENERIC_AVX2,
                                    **service_kwargs)
        self.service = service
        self.admission = AdmissionController(
            max_queue_depth=max_queue_depth, quota_rate=quota_rate,
            quota_burst=quota_burst)
        self.max_queue_depth = max_queue_depth
        self.batch_window_s = batch_window_s
        self.max_batch = max_batch
        self.deadline_margin_s = deadline_margin_s
        self.shed_occupancy = shed_occupancy
        self.interp_occupancy = interp_occupancy
        self.executor_workers = executor_workers
        self.fault_retries = fault_retries
        self.online_tune = online_tune
        self.online_tune_config = online_tune_config
        #: the live OnlineTuner between start() and stop() (kept after
        #: stop for post-run stats); None when online_tune is off
        self.online_tuner: Optional[OnlineTuner] = None
        #: batch keys in dispatch order (newest 256) — the flush-ordering
        #: contract tests read this
        self.flush_log: Deque[Tuple] = deque(maxlen=256)
        self._batches: Dict[Tuple, _Batch] = {}
        self._inflight = 0
        self._closing = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._flusher: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None
        self._drained: Optional[asyncio.Event] = None

    # -- lifecycle -------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._flusher is not None and not self._closing

    @property
    def inflight(self) -> int:
        """Admitted requests that have not completed yet."""
        return self._inflight

    async def start(self) -> "StencilServer":
        if self._flusher is not None:
            raise ReproError("server already started")
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.executor_workers,
            thread_name_prefix="repro-serve")
        self._wake = asyncio.Event()
        self._drained = asyncio.Event()
        self._drained.set()
        self._closing = False
        self._flusher = self._loop.create_task(self._flush_loop())
        if self.online_tune:
            self.online_tuner = self.service.online_tuner(
                config=self.online_tune_config, idle=self._tuner_idle)
            self.online_tuner.start()
        return self

    def _tuner_idle(self) -> bool:
        """The occupancy gate: exploration only while nothing admitted
        is in flight and no batch is open (read from the tuner thread —
        both fields are single loop-thread writes, so a stale read only
        delays or skips one trial, never admits one under load)."""
        return (not self._closing and self._inflight == 0
                and not self._batches)

    async def stop(self) -> None:
        """Flush everything outstanding, wait for completion, shut down."""
        if self._flusher is None:
            return
        self._closing = True
        if self.online_tuner is not None:
            # join off-loop: a trial in flight may hold the thread a while
            await self._loop.run_in_executor(None, self.online_tuner.stop)
        self._wake.set()
        await self._drained.wait()
        self._flusher.cancel()
        try:
            await self._flusher
        except asyncio.CancelledError:
            pass
        self._flusher = None
        self._executor.shutdown(wait=True)
        self._executor = None

    async def __aenter__(self) -> "StencilServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- submission ------------------------------------------------------------
    async def submit(self, job: StencilJob, *, tenant: str = "default",
                     deadline_s: Optional[float] = None) -> JobResult:
        """Admit, enqueue and await one job (see the module docstring).

        Raises :class:`ServerOverloaded` on rejection — always quickly,
        before any kernel work happens.
        """
        if not isinstance(job, StencilJob):
            raise ReproError("submit() takes a StencilJob")
        if deadline_s is not None and not deadline_s == deadline_s:
            raise ReproError("deadline_s must not be NaN")
        if self._flusher is None or self._closing:
            raise ServerOverloaded("server is not accepting requests",
                                   reason="closed", tenant=tenant)
        t0 = time.monotonic()
        obs.counter("server.requests").inc()
        obs.counter(f"server.requests.tenant.{tenant}").inc()
        reason = self.admission.check(tenant, self._inflight, deadline_s)
        if reason is not None:
            obs.counter("server.admission.rejected").inc()
            obs.counter(f"server.admission.rejected.reason.{reason}").inc()
            obs.counter(f"server.admission.rejected.tenant.{tenant}").inc()
            raise ServerOverloaded(
                f"request rejected ({reason}) for tenant {tenant!r}",
                reason=reason, tenant=tenant)
        obs.counter("server.admission.accepted").inc()
        if self.online_tuner is not None:
            self.online_tuner.observe(job.spec, job.shape,
                                      steps=job.steps,
                                      boundary=job.boundary)
        self._retry_faults("server.enqueue")
        pending = _Pending(job, tenant,
                           None if deadline_s is None else t0 + deadline_s,
                           t0, self._loop.create_future())
        self._inflight += 1
        self._drained.clear()
        obs.gauge("server.queue_depth").set(self._inflight)
        self._enqueue(pending)
        return await pending.future

    def _enqueue(self, pending: _Pending) -> None:
        key = pending.job.batch_key()
        now = time.monotonic()
        batch = self._batches.get(key)
        if batch is None:
            batch = self._batches[key] = _Batch(
                key, now, now + self.batch_window_s)
        batch.jobs.append(pending)
        if pending.deadline is not None:
            batch.due = min(batch.due,
                            pending.deadline - self.deadline_margin_s)
        if len(batch.jobs) >= self._effective_max_batch():
            batch.due = 0.0  # full: flush at the next flusher wakeup
        self._wake.set()

    # -- overload ladder -------------------------------------------------------
    def occupancy(self) -> float:
        return self._inflight / self.max_queue_depth

    def _effective_max_batch(self) -> int:
        if self.occupancy() >= self.shed_occupancy:
            obs.counter("server.overload.shed_batch").inc()
            return max(1, self.max_batch // SHED_DIVISOR)
        return self.max_batch

    def _force_interp(self) -> bool:
        if self.occupancy() >= self.interp_occupancy:
            obs.counter("server.overload.force_interp").inc()
            return True
        return False

    # -- flushing --------------------------------------------------------------
    async def _flush_loop(self) -> None:
        while True:
            self._wake.clear()
            now = time.monotonic()
            due = [b for b in self._batches.values()
                   if self._closing or b.due <= now]
            # urgent first: the deadline-ordering contract
            due.sort(key=lambda b: b.due)
            for batch in due:
                del self._batches[batch.key]
                self._dispatch(batch)
            timeout = None
            if self._batches:
                timeout = max(0.0, min(b.due for b in self._batches.values())
                              - time.monotonic())
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass

    def _dispatch(self, batch: _Batch) -> None:
        obs.counter("server.batch.flushes").inc()
        self.flush_log.append(batch.key)
        eff = self._effective_max_batch()
        force_interp = self._force_interp()
        for i in range(0, len(batch.jobs), eff):
            chunk = batch.jobs[i:i + eff]
            obs.histogram("server.batch.size").observe(len(chunk))
            fut = self._loop.run_in_executor(
                self._executor, obs.propagate(self._execute_batch),
                chunk, force_interp)
            fut.add_done_callback(
                lambda f, c=chunk: self._finish(c, f))

    def _execute_batch(self, chunk: Sequence[_Pending],
                       force_interp: bool) -> List[Grid]:
        """One flushed chunk, on an executor thread: compile once through
        the shared cache, then run every job (the service's retry /
        degrade ladders guard both calls).

        With online tuning on, the batch runs on the stored winner for
        its workload (``tune="db"`` — a pure lookup, zero trials): a
        plan-aware winner steers the compile, a tiled/shard winner
        steers the executor.  Every engine is bitwise-identical, so a
        promotion mid-stream never changes responses."""
        self._retry_faults("server.batch_flush")
        job0 = chunk[0].job
        tuned = None
        if self.online_tuner is not None and not force_interp:
            tuned = self.service.tuned_config(job0.spec, job0.shape,
                                              boundary=job0.boundary)
            if tuned is not None:
                obs.counter("tune.online.applied").inc()
        with obs.span("server.batch", kernel=job0.spec.name,
                      jobs=len(chunk)):
            if force_interp:
                self.service.compile(job0.spec, job0.shape,
                                     backend="interp")
            else:
                self.service.compile_many(
                    [CompileRequest(job0.spec, job0.shape)],
                    tune="db" if tuned is not None else False)
            tile = tuned.tile_shape if (
                tuned is not None and tuned.engine == "tiled") else None
            shards = tuned.shards if (
                tuned is not None and tuned.engine == "shard") else None
            blocks = tuned.temporal_block if shards is not None else 1
            return self.service.run_many(
                [SweepJob(p.job.spec, p.job.materialize(), p.job.steps,
                          boundary=p.job.boundary, value=p.job.value,
                          tile_shape=tile, shards=shards,
                          temporal_block=blocks)
                 for p in chunk])

    def _finish(self, chunk: Sequence[_Pending], fut) -> None:
        """Executor-side completion: hop back to the loop thread."""
        exc = fut.exception()
        grids = None if exc is not None else fut.result()
        self._loop.call_soon_threadsafe(self._resolve, chunk, grids, exc)

    def _resolve(self, chunk: Sequence[_Pending],
                 grids: Optional[List[Grid]],
                 exc: Optional[BaseException]) -> None:
        now = time.monotonic()
        for i, p in enumerate(chunk):
            self._inflight -= 1
            if exc is not None:
                obs.counter("server.batch.failures").inc()
                if not p.future.done():
                    p.future.set_exception(exc)
                continue
            latency = now - p.t0
            met = p.deadline is None or now <= p.deadline
            if not met:
                obs.counter("server.deadline_missed").inc()
                obs.counter(
                    f"server.deadline_missed.tenant.{p.tenant}").inc()
            obs.counter("server.completed").inc()
            obs.histogram("server.latency_ms").observe(latency * 1e3)
            obs.histogram(
                f"server.latency_ms.tenant.{p.tenant}").observe(
                latency * 1e3)
            if not p.future.done():
                p.future.set_result(JobResult(
                    grid=grids[i], tenant=p.tenant, latency_s=latency,
                    batch_size=len(chunk), deadline_met=met))
        obs.gauge("server.queue_depth").set(self._inflight)
        if self._inflight == 0 and not self._batches:
            self._drained.set()
        self._wake.set()  # freed capacity may un-shed the next flush

    # -- fault sites -----------------------------------------------------------
    def _retry_faults(self, site: str) -> None:
        """Hit ``site``; injected raises are retried (bounded) so chaos
        plans perturb latency, never results."""
        for attempt in range(self.fault_retries + 1):
            try:
                fault_point(site)
                return
            except FaultInjected:
                obs.counter("server.faults").inc()
                obs.counter(f"server.faults.site.{site}").inc()
                if attempt == self.fault_retries:
                    raise

    # -- introspection ---------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Live serving stats (cache/tuning counters ride the service)."""
        out: Dict[str, float] = {
            "inflight": self._inflight,
            "occupancy": self.occupancy(),
            "open_batches": len(self._batches),
            "tenants": len(self.admission.tenants()),
        }
        for k, v in self.service.stats().items():
            out[f"service_{k}"] = v
        if self.online_tuner is not None:
            for k, v in self.online_tuner.stats().items():
                out[f"online_{k}"] = v
        return out


__all__ = ["JobResult", "SHED_DIVISOR", "StencilJob", "StencilServer"]
