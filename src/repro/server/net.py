"""A JSON-lines TCP front end for the stencil server (stdlib only).

One request per line, one response per line, any number of in-flight
requests per connection (responses carry the request ``id`` and may
arrive out of order — micro-batching reorders completions)::

    -> {"id": 1, "kernel": "heat-2d", "shape": [32, 32], "steps": 2,
        "seed": 0, "tenant": "acme", "deadline_ms": 500}
    <- {"id": 1, "ok": true, "checksum": "9f...", "shape": [32, 32],
        "dtype": "float64", "latency_ms": 3.1, "batch_size": 4}

Responses carry a sha256 **checksum** of the result's interior bytes
rather than the array itself — enough for the load generator's bitwise
verification without shipping megabytes of float64 per response
(an in-process client gets the full grid; see
:mod:`repro.server.client`).  Rejections come back immediately::

    <- {"id": 7, "ok": false, "error": "...", "reason": "quota"}
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..errors import ReproError
from ..stencils import library
from .admission import ServerOverloaded
from .core import StencilJob, StencilServer


def interior_checksum(interior: np.ndarray) -> str:
    """sha256 over the C-contiguous interior bytes."""
    return hashlib.sha256(
        np.ascontiguousarray(interior).tobytes()).hexdigest()


def _parse_request(payload: Dict[str, Any]) -> Tuple[StencilJob, str,
                                                     Optional[float]]:
    try:
        spec = library.get(str(payload["kernel"]))
        job = StencilJob(
            spec,
            tuple(int(n) for n in payload["shape"]),
            int(payload.get("steps", 1)),
            seed=int(payload.get("seed", 0)),
            boundary=str(payload.get("boundary", "periodic")),
            value=float(payload.get("value", 0.0)),
        )
    except ReproError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed request: {exc}") from None
    tenant = str(payload.get("tenant", "default"))
    deadline_ms = payload.get("deadline_ms")
    deadline_s = None if deadline_ms is None else float(deadline_ms) / 1e3
    return job, tenant, deadline_s


async def _handle_line(server: StencilServer, line: str) -> Dict[str, Any]:
    try:
        payload = json.loads(line)
    except ValueError as exc:
        return {"id": None, "ok": False,
                "error": f"request is not valid JSON: {exc}",
                "reason": "bad_request"}
    if not isinstance(payload, dict):
        return {"id": None, "ok": False,
                "error": "request must be a JSON object",
                "reason": "bad_request"}
    rid = payload.get("id")
    try:
        job, tenant, deadline_s = _parse_request(payload)
        result = await server.submit(job, tenant=tenant,
                                     deadline_s=deadline_s)
    except ServerOverloaded as exc:
        return {"id": rid, "ok": False, "error": str(exc),
                "reason": exc.reason}
    except ReproError as exc:
        return {"id": rid, "ok": False, "error": str(exc),
                "reason": "bad_request"}
    interior = result.grid.interior
    return {
        "id": rid,
        "ok": True,
        "checksum": interior_checksum(interior),
        "shape": list(interior.shape),
        "dtype": str(interior.dtype),
        "latency_ms": result.latency_s * 1e3,
        "batch_size": result.batch_size,
        "deadline_met": result.deadline_met,
    }


async def serve_tcp(server: StencilServer, *, host: str = "127.0.0.1",
                    port: int = 0) -> asyncio.AbstractServer:
    """Bind the JSON-lines protocol in front of a started ``server``.
    Returns the asyncio server (``.sockets[0].getsockname()[1]`` is the
    bound port; close it to stop accepting)."""

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        tasks = set()

        async def respond(line: str) -> None:
            response = await _handle_line(server, line)
            async with write_lock:
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()

        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8").strip()
                if not line:
                    continue
                task = asyncio.ensure_future(respond(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return await asyncio.start_server(handle, host=host, port=port)


async def request_tcp(host: str, port: int,
                      payloads: list) -> list:
    """Send ``payloads`` (dicts) over one connection, pipelined, and
    return the responses reordered to match the request order (requests
    without an ``id`` get one assigned)."""
    reader, writer = await asyncio.open_connection(host, port)
    payloads = [dict(p) for p in payloads]
    for i, p in enumerate(payloads):
        p.setdefault("id", i)
    try:
        for p in payloads:
            writer.write((json.dumps(p) + "\n").encode("utf-8"))
        await writer.drain()
        by_id = {}
        for _ in payloads:
            raw = await reader.readline()
            if not raw:
                raise ReproError("server closed the connection early")
            response = json.loads(raw.decode("utf-8"))
            by_id[response.get("id")] = response
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return [by_id[p["id"]] for p in payloads]


__all__ = ["interior_checksum", "request_tcp", "serve_tcp"]
