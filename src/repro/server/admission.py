"""Admission control for the stencil server: quotas + queue depth.

Two independent guards decide whether a request may enter the server,
both designed to fail *fast* — a rejected request never touches the
batcher, the executor, or the kernel service, so overload turns into
cheap :class:`ServerOverloaded` responses instead of timeouts:

* a per-tenant **token bucket** (``quota_rate`` tokens/second refill,
  ``quota_burst`` capacity) bounds each tenant's sustained request rate
  while allowing short bursts;
* a **global queue-depth** ceiling bounds the number of admitted
  requests that have not yet completed, which is the server's only
  unbounded resource.

A third check rejects requests whose deadline has already expired at
enqueue time — running them would only waste batch capacity on a
response the client has given up on.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, Optional

from ..errors import ReproError

#: rejection reasons :class:`ServerOverloaded` may carry.
REJECT_REASONS = ("quota", "queue", "deadline", "closed")


class ServerOverloaded(ReproError):
    """A request was rejected at admission (fast path, nothing ran).

    ``reason`` is one of :data:`REJECT_REASONS`; ``tenant`` names the
    requester the decision applied to.
    """

    def __init__(self, message: str, *, reason: str = "queue",
                 tenant: str = "") -> None:
        super().__init__(message)
        self.reason = reason
        self.tenant = tenant


class TokenBucket:
    """A lazily refilled token bucket (not thread-safe: the server only
    consults it from the event-loop thread)."""

    def __init__(self, rate: float, burst: float, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not rate > 0:
            raise ReproError("quota rate must be positive (use inf for "
                             "an unlimited tenant)")
        if not burst >= 1 or math.isnan(burst):
            raise ReproError("quota burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._clock = clock
        self._last = clock()

    def _refill(self, now: float) -> None:
        if self.rate == math.inf:
            self.tokens = self.burst
        else:
            self.tokens = min(self.burst,
                              self.tokens + (now - self._last) * self.rate)
        self._last = now

    def try_take(self, n: float = 1.0) -> bool:
        """Consume ``n`` tokens if available; never blocks."""
        self._refill(self._clock())
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def available(self) -> float:
        self._refill(self._clock())
        return self.tokens


class AdmissionController:
    """The admission decision: deadline, then queue depth, then quota.

    The ordering is deliberate: an expired deadline is the requester's
    fault and should not consume quota; a full queue is global and
    should not consume the tenant's tokens either.  Only a request that
    would actually be admitted pays a token.
    """

    def __init__(self, *, max_queue_depth: int, quota_rate: float,
                 quota_burst: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not isinstance(max_queue_depth, int) or max_queue_depth < 1:
            raise ReproError("max_queue_depth must be an integer >= 1")
        if not quota_rate > 0:
            raise ReproError("quota_rate must be positive (inf = unlimited)")
        if quota_burst is None:
            quota_burst = quota_rate if quota_rate != math.inf else 1.0
        if not quota_burst >= 1 or math.isnan(quota_burst):
            raise ReproError("quota_burst must be >= 1")
        self.max_queue_depth = max_queue_depth
        self.quota_rate = float(quota_rate)
        self.quota_burst = float(quota_burst)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}

    def bucket(self, tenant: str) -> TokenBucket:
        b = self._buckets.get(tenant)
        if b is None:
            b = self._buckets[tenant] = TokenBucket(
                self.quota_rate, self.quota_burst, clock=self._clock)
        return b

    def check(self, tenant: str, inflight: int,
              deadline_s: Optional[float]) -> Optional[str]:
        """The rejection reason for one request, or ``None`` to admit."""
        if deadline_s is not None and deadline_s <= 0:
            return "deadline"
        if inflight >= self.max_queue_depth:
            return "queue"
        if self.quota_rate != math.inf and not self.bucket(tenant).try_take():
            return "quota"
        if self.quota_rate == math.inf:
            self.bucket(tenant)  # still track the tenant for introspection
        return None

    def tenants(self) -> tuple:
        return tuple(sorted(self._buckets))


__all__ = ["AdmissionController", "REJECT_REASONS", "ServerOverloaded",
           "TokenBucket"]
