"""The asyncio serving layer: multi-tenant stencil requests at scale.

Layered from the outside in:

* :mod:`repro.server.net` — a JSON-lines TCP front end (``repro serve``);
* :mod:`repro.server.client` — the in-process :class:`LocalClient`
  (a blocking facade over a background event loop) for tests/benchmarks;
* :mod:`repro.server.core` — :class:`StencilServer`: deadline
  micro-batching over :class:`~repro.service.KernelService`, the
  overload degradation ladder, and the ``server.*`` obs taxonomy;
* :mod:`repro.server.admission` — per-tenant token buckets + global
  queue-depth admission (:class:`ServerOverloaded` fast rejections);
* :mod:`repro.server.loadgen` — the deterministic load generator the
  SLO benchmark and chaos stage drive.
"""

from .admission import (
    AdmissionController,
    REJECT_REASONS,
    ServerOverloaded,
    TokenBucket,
)
from .client import LocalClient
from .core import JobResult, StencilJob, StencilServer
from .loadgen import (
    LoadConfig,
    LoadReport,
    reference_results,
    request_schedule,
    run_load,
    run_load_sync,
)

__all__ = [
    "AdmissionController",
    "JobResult",
    "LoadConfig",
    "LoadReport",
    "LocalClient",
    "REJECT_REASONS",
    "ServerOverloaded",
    "StencilJob",
    "StencilServer",
    "TokenBucket",
    "reference_results",
    "request_schedule",
    "run_load",
    "run_load_sync",
]
