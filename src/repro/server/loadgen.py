"""An asyncio load generator for the stencil server.

Drives a deterministic mixed-tenant request schedule at the server —
every request is a seeded :class:`~repro.server.core.StencilJob`, so
the correct answer for each one is known in advance — and reports what
a capacity test needs: p50/p99 latency, goodput, the rejection split by
reason, and **bitwise correctness** of every completed response against
an uncontended single-request baseline run through a plain
:class:`~repro.service.KernelService`.

``benchmarks/bench_service.py`` gates SLOs on these reports;
``repro chaos --stages server`` compares two of them (clean vs faulted)
response-by-response; ``repro serve --selftest`` prints one.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import GENERIC_AVX2, MachineConfig
from ..errors import ReproError
from ..service import KernelService, SweepJob
from ..stencils import library
from ..stencils.grid import Grid
from .admission import ServerOverloaded
from .core import JobResult, StencilJob, StencilServer


def percentile(values: List[float], pct: float) -> float:
    """The nearest-rank percentile of ``values`` (NaN when empty).

    The rank is ``ceil(pct * n / 100)`` computed on the near-integer
    product ``pct * n`` — dividing first (``ceil(pct/100 * n)``) rounds
    up spuriously whenever ``pct/100`` lands above its decimal value in
    binary: ``ceil(28/100 * 25)`` gave 8 where the exact rank is 7, so
    p28 of 25 samples read one rank too high.  The rank is clamped to
    ``[1, n]`` so pct=0 and pct=100 hit the min and max exactly.
    """
    if not 0.0 <= pct <= 100.0:
        raise ReproError(f"pct must be within [0, 100], got {pct!r}")
    if not values:
        return float("nan")
    ordered = sorted(values)
    n = len(ordered)
    rank = max(1, math.ceil(round(pct * n, 6) / 100.0))
    return ordered[min(rank, n) - 1]


@dataclass(frozen=True)
class LoadConfig:
    """One deterministic request schedule (see :func:`request_schedule`)."""

    requests: int = 1000
    tenants: int = 4
    kernels: Tuple[str, ...] = ("heat-2d", "box-2d9p")
    shape: Tuple[int, ...] = (32, 32)
    steps: int = 2
    seeds: int = 3
    deadline_s: Optional[float] = None
    keep_results: bool = False

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ReproError("requests must be >= 1")
        if self.tenants < 1:
            raise ReproError("tenants must be >= 1")
        if self.seeds < 1:
            raise ReproError("seeds must be >= 1")
        if not self.kernels:
            raise ReproError("at least one kernel required")


@dataclass
class LoadReport:
    """The outcome of one generated load (all latencies in ms)."""

    requests: int
    completed: int = 0
    rejected: int = 0
    failed: int = 0
    reject_reasons: Dict[str, int] = field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)
    deadline_misses: int = 0
    p50_ms: float = float("nan")
    p99_ms: float = float("nan")
    mean_ms: float = float("nan")
    max_ms: float = float("nan")
    reject_p50_ms: float = float("nan")
    reject_p99_ms: float = float("nan")
    wall_s: float = 0.0
    goodput_rps: float = 0.0
    batch_mean: float = float("nan")
    results: Dict[str, np.ndarray] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    @property
    def bitwise_ok(self) -> bool:
        return not self.mismatches

    @property
    def ok(self) -> bool:
        return self.bitwise_ok and not self.failed

    def to_dict(self) -> Dict:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "failed": self.failed,
            "reject_reasons": dict(sorted(self.reject_reasons.items())),
            "mismatches": len(self.mismatches),
            "deadline_misses": self.deadline_misses,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
            "reject_p50_ms": self.reject_p50_ms,
            "reject_p99_ms": self.reject_p99_ms,
            "wall_s": self.wall_s,
            "goodput_rps": self.goodput_rps,
            "batch_mean": self.batch_mean,
            "bitwise_ok": self.bitwise_ok,
            "ok": self.ok,
        }

    def summary(self) -> str:
        lines = [
            f"requests        {self.requests} "
            f"({self.completed} completed, {self.rejected} rejected, "
            f"{self.failed} failed)",
            f"latency         p50 {self.p50_ms:.1f} ms, "
            f"p99 {self.p99_ms:.1f} ms, max {self.max_ms:.1f} ms",
            f"goodput         {self.goodput_rps:.0f} req/s over "
            f"{self.wall_s:.2f} s (mean batch {self.batch_mean:.1f})",
        ]
        if self.rejected:
            detail = ", ".join(f"{k}={v}" for k, v in
                               sorted(self.reject_reasons.items()))
            lines.append(f"rejections      {detail}; p99 "
                         f"{self.reject_p99_ms:.2f} ms")
        if self.deadline_misses:
            lines.append(f"deadline misses {self.deadline_misses}")
        lines.append("bitwise         "
                     + ("all responses correct" if self.bitwise_ok else
                        f"{len(self.mismatches)} MISMATCH(ES)"))
        return "\n".join(lines)


def request_schedule(cfg: LoadConfig) -> List[Tuple[str, StencilJob, str]]:
    """The deterministic ``(label, job, tenant)`` list for one config:
    requests round-robin over kernels, seeds and tenants."""
    out = []
    for i in range(cfg.requests):
        kernel = cfg.kernels[i % len(cfg.kernels)]
        seed = (i // len(cfg.kernels)) % cfg.seeds
        tenant = f"t{i % cfg.tenants}"
        spec = library.get(kernel)
        job = StencilJob(spec, cfg.shape, cfg.steps, seed=seed)
        out.append((f"{i:05d}:{kernel}:s{seed}:{tenant}", job, tenant))
    return out


def reference_results(cfg: LoadConfig,
                      machine: Optional[MachineConfig] = None
                      ) -> Dict[Tuple[str, int], np.ndarray]:
    """The expected interior per distinct ``(kernel, seed)``, computed
    uncontended through a plain :class:`KernelService` — the sweep
    engine is bitwise deterministic across worker counts and backends,
    so any server response must match these exactly."""
    svc = KernelService(machine or GENERIC_AVX2)
    out: Dict[Tuple[str, int], np.ndarray] = {}
    for kernel in cfg.kernels:
        spec = library.get(kernel)
        for seed in range(cfg.seeds):
            grid = Grid.random(cfg.shape, spec.radius, seed=seed)
            out[(kernel, seed)] = svc.run(
                SweepJob(spec, grid, cfg.steps)).interior.copy()
    return out


async def run_load(server: StencilServer, cfg: LoadConfig, *,
                   references: Optional[Dict] = None) -> LoadReport:
    """Fire the whole schedule concurrently at ``server`` and collect a
    :class:`LoadReport`.  ``references`` (from
    :func:`reference_results`) enables the bitwise check; pass ``None``
    to skip it (the chaos stage compares two reports instead)."""
    schedule = request_schedule(cfg)
    report = LoadReport(requests=cfg.requests)
    latencies: List[float] = []
    reject_lat: List[float] = []
    batch_sizes: List[float] = []

    async def one(label: str, job: StencilJob, tenant: str):
        t0 = time.monotonic()
        try:
            res = await server.submit(job, tenant=tenant,
                                      deadline_s=cfg.deadline_s)
        except ServerOverloaded as exc:
            return label, exc, (time.monotonic() - t0)
        except Exception as exc:  # noqa: BLE001 - collected per request
            return label, exc, (time.monotonic() - t0)
        return label, res, (time.monotonic() - t0)

    t_start = time.monotonic()
    outcomes = await asyncio.gather(
        *(one(label, job, tenant) for label, job, tenant in schedule))
    report.wall_s = time.monotonic() - t_start

    for (label, job, tenant), (_, outcome, dt) in zip(schedule, outcomes):
        if isinstance(outcome, ServerOverloaded):
            report.rejected += 1
            report.reject_reasons[outcome.reason] = \
                report.reject_reasons.get(outcome.reason, 0) + 1
            reject_lat.append(dt * 1e3)
            continue
        if isinstance(outcome, BaseException):
            report.failed += 1
            report.errors.append(f"{label}: {outcome}")
            continue
        assert isinstance(outcome, JobResult)
        report.completed += 1
        latencies.append(outcome.latency_s * 1e3)
        batch_sizes.append(outcome.batch_size)
        if not outcome.deadline_met:
            report.deadline_misses += 1
        interior = outcome.grid.interior
        kernel, seed = job.spec.name, job.seed
        if references is not None:
            ref = references[(kernel, seed)]
            if (interior.dtype != ref.dtype
                    or not np.array_equal(interior, ref)):
                report.mismatches.append(label)
        if cfg.keep_results:
            report.results[label] = interior.copy()

    report.p50_ms = percentile(latencies, 50)
    report.p99_ms = percentile(latencies, 99)
    report.mean_ms = (sum(latencies) / len(latencies)
                      if latencies else float("nan"))
    report.max_ms = max(latencies) if latencies else float("nan")
    report.reject_p50_ms = percentile(reject_lat, 50)
    report.reject_p99_ms = percentile(reject_lat, 99)
    report.batch_mean = (sum(batch_sizes) / len(batch_sizes)
                         if batch_sizes else float("nan"))
    if report.wall_s > 0:
        report.goodput_rps = report.completed / report.wall_s
    return report


def run_load_sync(cfg: LoadConfig, *,
                  server: Optional[StencilServer] = None,
                  references: Optional[Dict] = None,
                  **server_kwargs) -> LoadReport:
    """Build a server, run one load against it on a fresh event loop,
    tear it down.  The synchronous entry the benchmark and CLI use."""
    if server is not None and server_kwargs:
        raise ReproError("pass either a server or construction keywords")

    async def main() -> LoadReport:
        srv = server or StencilServer(**server_kwargs)
        async with srv:
            return await run_load(srv, cfg, references=references)

    return asyncio.run(main())


__all__ = ["LoadConfig", "LoadReport", "percentile", "reference_results",
           "request_schedule", "run_load", "run_load_sync"]
