"""In-process clients for :class:`~repro.server.core.StencilServer`.

Two shapes, one server:

* async code inside the server's event loop calls
  ``await server.submit(...)`` directly — no client object needed;
* synchronous code (tests, notebooks, the CLI) uses
  :class:`LocalClient`, which owns a private event loop on a background
  thread, starts the server there, and exposes a blocking
  :meth:`~LocalClient.submit` plus a concurrent
  :meth:`~LocalClient.submit_all`.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import ReproError
from .core import JobResult, StencilJob, StencilServer


class LocalClient:
    """A blocking facade over a server running on a background loop.

    Use as a context manager::

        with LocalClient(machine=GENERIC_AVX2) as client:
            result = client.submit(job, tenant="acme", deadline_s=0.5)

    Either pass a pre-built (not yet started) :class:`StencilServer` or
    the keyword arguments to build one.
    """

    def __init__(self, server: Optional[StencilServer] = None,
                 **server_kwargs) -> None:
        if server is not None and server_kwargs:
            raise ReproError("pass either a server or construction "
                             "keywords, not both")
        self.server = server or StencilServer(**server_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "LocalClient":
        if self._thread is not None:
            raise ReproError("client already started")
        started = threading.Event()

        def runner() -> None:
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.server.start())
            started.set()
            self._loop.run_forever()
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

        self._thread = threading.Thread(target=runner,
                                        name="repro-server-loop",
                                        daemon=True)
        self._thread.start()
        started.wait()
        return self

    def close(self) -> None:
        if self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._thread = None
        self._loop = None

    def __enter__(self) -> "LocalClient":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- requests --------------------------------------------------------------
    def _schedule(self, job: StencilJob, tenant: str,
                  deadline_s: Optional[float]) -> Future:
        if self._thread is None:
            raise ReproError("client is not started")
        return asyncio.run_coroutine_threadsafe(
            self.server.submit(job, tenant=tenant, deadline_s=deadline_s),
            self._loop)

    def submit(self, job: StencilJob, *, tenant: str = "default",
               deadline_s: Optional[float] = None,
               timeout_s: Optional[float] = 60.0) -> JobResult:
        """Submit one job and block for its result (or its rejection)."""
        return self._schedule(job, tenant, deadline_s).result(timeout_s)

    def submit_all(
        self,
        jobs: Sequence[Union[StencilJob, Tuple[StencilJob, str],
                             Tuple[StencilJob, str, Optional[float]]]],
        *,
        timeout_s: Optional[float] = 120.0,
    ) -> List[Union[JobResult, BaseException]]:
        """Submit many jobs concurrently; collect result-or-exception per
        job, in order.  Each item is a job, ``(job, tenant)`` or
        ``(job, tenant, deadline_s)``."""
        futures = []
        for item in jobs:
            job, tenant, deadline = item, "default", None
            if isinstance(item, tuple):
                job, tenant = item[0], item[1]
                if len(item) > 2:
                    deadline = item[2]
            futures.append(self._schedule(job, tenant, deadline))
        out: List[Union[JobResult, BaseException]] = []
        for f in futures:
            try:
                out.append(f.result(timeout_s))
            except Exception as exc:  # collected, not raised
                out.append(exc)
        return out


__all__ = ["LocalClient"]
