"""Real-execution micro-benchmarks (wall-clock, not the analytic model).

These time the repository's actual Python code paths: the numpy fast path
of compiled Jigsaw kernels vs the dense reference sweep, the SIMD-machine
interpreter, and the threaded tile executor.  They demonstrate that the
SDF low-rank structure is a genuine algorithmic saving even at the numpy
level (separable kernels run fewer array passes than dense taps)."""

import time

import numpy as np
import pytest

from repro.config import GENERIC_AVX2
from repro.core import compile_kernel
from repro.core.cache import KernelCache
from repro.parallel.executor import run_parallel
from repro.stencils import apply_steps, library
from repro.stencils.grid import Grid
from repro.tiling.tessellate import tessellate_1d
from repro.vectorize.driver import run_program
from repro.schemes import generate, model_grid


def _kernel_and_grid(name, shape, fusion=1):
    spec = library.get(name)
    k0 = compile_kernel(spec, GENERIC_AVX2, Grid(shape, 16),
                        time_fusion=fusion)
    g = k0.grid_like(shape, seed=1)
    return compile_kernel(spec, GENERIC_AVX2, g, time_fusion=fusion), g


def test_dense_reference_box3d(benchmark):
    spec = library.get("box-3d27p")
    g = Grid.random((48, 48, 48), spec.radius, seed=1)
    out = benchmark(apply_steps, spec, g, 2)
    assert np.isfinite(out.interior).all()


def test_jigsaw_numpy_path_box3d(benchmark):
    """The separable Box-3D27P: SDF turns 27 dense taps into one
    flatten + 3-tap pass — fewer numpy array traversals."""
    k, g = _kernel_and_grid("box-3d27p", (48, 48, 48))
    out = benchmark(k.run_numpy, g, 2)
    ref = apply_steps(library.get("box-3d27p"), g, 2)
    assert np.allclose(out.interior, ref.interior, rtol=1e-12)


def test_jigsaw_numpy_path_box2d(benchmark):
    k, g = _kernel_and_grid("box-2d9p", (512, 512))
    out = benchmark(k.run_numpy, g, 2)
    assert np.isfinite(out.interior).all()


def test_parallel_executor_heat2d(benchmark):
    spec = library.get("heat-2d")
    g = Grid.random((256, 256), spec.radius, seed=2)
    out = benchmark(run_parallel, spec, g, 2, workers=4,
                    tile_shape=(64, 256))
    ref = apply_steps(spec, g, 2)
    assert np.allclose(out.interior, ref.interior, rtol=1e-12)


def test_tessellated_1d_time_blocking(benchmark):
    spec = library.get("heat-1d")
    rng = np.random.default_rng(0)
    v = rng.uniform(size=1 << 14)
    out = benchmark(tessellate_1d, spec, v, 32, tile=1024)
    assert np.isfinite(out).all()


def _cold_compile(spec, grid):
    """One uncached compile: plan + SDF + full program generation."""
    cache = KernelCache()  # fresh -> every stage misses
    return cache.compile(spec, GENERIC_AVX2, grid).program


def test_compile_cold(benchmark):
    spec = library.get("box-2d9p")
    grid = Grid((64, 96), (16, 16))
    prog = benchmark(_cold_compile, spec, grid)
    assert prog.body  # a real program came out


def test_compile_cache_warm(benchmark):
    spec = library.get("box-2d9p")
    grid = Grid((64, 96), (16, 16))
    cache = KernelCache()
    cold = _cold_compile(spec, grid)
    cache.compile(spec, GENERIC_AVX2, grid).program  # prime
    warm = benchmark(lambda: cache.compile(spec, GENERIC_AVX2, grid).program)
    assert warm == cold
    assert cache.stats.hits >= 1 and cache.stats.misses == 1


def test_compile_cache_speedup():
    """Acceptance: a cache hit is >= 5x faster than a cold compile."""
    spec = library.get("box-3d27p")
    grid = Grid((8, 8, 96), (16, 16, 16))
    reps = 5

    t0 = time.perf_counter()
    for _ in range(reps):
        _cold_compile(spec, grid)
    cold = (time.perf_counter() - t0) / reps

    cache = KernelCache()
    cache.compile(spec, GENERIC_AVX2, grid).program  # prime
    t0 = time.perf_counter()
    for _ in range(reps):
        cache.compile(spec, GENERIC_AVX2, grid).program
    warm = (time.perf_counter() - t0) / reps

    assert cache.stats.hits >= reps
    assert cold / warm >= 5.0, (
        f"cache hit only {cold / warm:.1f}x faster "
        f"(cold {cold * 1e3:.2f}ms, warm {warm * 1e3:.2f}ms)"
    )


@pytest.mark.parametrize("scheme", ["auto", "reorg", "jigsaw"])
def test_simulator_interpreter_throughput(benchmark, scheme):
    """Cycle-exact interpretation speed per scheme (small grid)."""
    spec = library.get("heat-1d")
    grid = model_grid(scheme, spec, GENERIC_AVX2, seed=3)
    prog = generate(scheme, spec, GENERIC_AVX2, grid)
    out = benchmark(run_program, prog, grid, prog.steps_per_iter)
    ref = apply_steps(spec, grid, prog.steps_per_iter)
    assert np.allclose(out.interior, ref.interior, rtol=1e-12)
