"""Table 2 — analytical vector instructions per vector.

Regenerates the paper-vs-measured table (all six kernels x three methods)
and times the full lower-and-count pipeline."""

from repro.config import AMD_EPYC_7V13
from repro.experiments import table2

from _bench_utils import emit


def test_table2_counts(once):
    rows = once(table2.data, AMD_EPYC_7V13)
    emit("Table 2: instructions per vector (paper / measured)",
         table2.run(AMD_EPYC_7V13))
    assert len(rows) == 18
    for d in rows:
        if d["method"] == "auto":
            assert d["measured"] == d["paper"]
        if d["method"] == "jigsaw":
            # the §3 claim: Jigsaw's per-step stores amortize to 0.5
            assert d["measured"][1] == 0.5
