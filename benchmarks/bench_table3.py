"""Table 3 — stencil benchmark configurations (consistency check)."""

from repro.experiments import table3

from _bench_utils import emit


def test_table3_configs(once):
    rows = once(table3.data)
    emit("Table 3: kernel configurations", table3.run())
    assert [d["points"] for d in rows] == [3, 5, 7, 5, 9, 9, 7, 27]
