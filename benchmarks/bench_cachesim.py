"""Model validation: replay simulated memory traces through LRU caches.

Checks the two assumptions the analytic memory model rests on (DESIGN.md):
every scheme's DRAM line traffic equals its compulsory footprint, and
Multiple Loads' redundant vector loads replay from L1."""

from repro.analysis.report import render_table
from repro.config import AMD_EPYC_7V13
from repro.machine.cachesim import simulate_program_cache
from repro.schemes import generate, scheme_halo
from repro.stencils import library
from repro.stencils.grid import Grid

from _bench_utils import emit


def _collect():
    spec = library.get("box-2d9p")
    rows = []
    for scheme in ("auto", "reorg", "tess", "folding", "jigsaw", "t-jigsaw"):
        g = Grid.random((16, 48), scheme_halo(scheme, spec, AMD_EPYC_7V13),
                        seed=1)
        prog = generate(scheme, spec, AMD_EPYC_7V13, g)
        stats = simulate_program_cache(prog, g, AMD_EPYC_7V13)
        rows.append([scheme, stats.accesses,
                     f"{stats.hit_rate('L1') * 100:.1f}%",
                     stats.dram_lines, stats.unique_lines])
    return rows


def test_cache_trace_validates_memory_model(once):
    rows = once(_collect)
    emit("Cache-trace validation (box-2d9p, one sweep)",
         render_table(["scheme", "line accesses", "L1 hit rate",
                       "DRAM lines", "compulsory lines"], rows))
    for scheme, _accesses, _hr, dram, compulsory in rows:
        assert dram == compulsory, scheme
    auto = next(r for r in rows if r[0] == "auto")
    jig = next(r for r in rows if r[0] == "jigsaw")
    assert auto[1] > jig[1]  # Auto replays far more line accesses
