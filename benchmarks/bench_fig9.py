"""Figure 9 — sequential tiling-free performance vs problem size."""

from repro.config import PAPER_MACHINES
from repro.experiments import fig9

from _bench_utils import emit


def test_fig9_sequential_curves(once):
    results = once(fig9.data, PAPER_MACHINES)
    emit("Figure 9: sequential block-free GStencil/s", fig9.run(PAPER_MACHINES))
    for mname, per_kernel in results.items():
        for kernel, d in per_kernel.items():
            s = d["series"]
            # Jigsaw >= both classical baselines at every size
            for i in range(len(d["sizes"])):
                assert s["jigsaw"][i] >= s["reorg"][i]
                assert s["jigsaw"][i] >= s["auto"][i] * 0.999
            # the size sweep ends in DRAM (the stair bottoms out)
            assert d["levels"][-1] == "DRAM"
        # §4.3: T-Jigsaw falls back to Jigsaw's level for the 3-D box
        box = per_kernel["box-3d27p"]["series"]
        assert max(box["t-jigsaw"]) <= max(box["jigsaw"]) * 1.001
