"""The sharded-execution acceptance gates.

Times ``steps`` codegen sweeps of a 2-D star kernel over a 256x512 grid
once in a single process (the unsharded codegen engine —
:meth:`repro.core.kernel.CompiledKernel.run`) and once per point of a
1/2/4/8-shard curve on both the thread and the process executor (warm
:class:`repro.shard.ShardRunner` pools, best-of-N timing), and asserts
the subsystem's contracts:

* **bitwise equality, always**: sharded runs — reference engine, program
  engine, temporally blocked, and a chaos-killed-then-restored shard —
  must match the unsharded engines bit for bit on the interior;
* **>= 2x speedup at 4 shards** over the single-process codegen
  baseline, enforced only when the host has >= 4 CPUs
  (``gate_enforced`` records the decision; a 1-core container cannot
  speed anything up, but CI runners can and must).

Appends a timestamped entry (curve + gates) to ``BENCH_shard.json``
(override via ``BENCH_SHARD_JSON``) through
:func:`_bench_utils.append_history` — capped, consecutive-duplicate-
free.  Runs under pytest (``pytest benchmarks/bench_shard.py -s``) or
stand-alone (``python benchmarks/bench_shard.py``).
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from _bench_utils import append_history, emit  # noqa: E402

from repro import faults  # noqa: E402
from repro.config import GENERIC_AVX2  # noqa: E402
from repro.core import compile_kernel  # noqa: E402
from repro.core.jigsaw import required_halo  # noqa: E402
from repro.faults.plan import FaultPlan, FaultRule  # noqa: E402
from repro.shard import KernelRecipe, ShardRunner, run_sharded  # noqa: E402
from repro.stencils import apply_steps, library  # noqa: E402
from repro.stencils.grid import Grid  # noqa: E402

SHAPE = (256, 512)
STEPS = 8
TEMPORAL_BLOCK = 2
SHARD_CURVE = (1, 2, 4, 8)
EXECUTORS = ("thread", "process")
REPEATS = 3

#: 4 shards must beat the single-process codegen baseline by this factor
#: (on hosts with enough cores to make that physically possible).
SPEEDUP_FLOOR = 2.0

#: the speedup gate needs real parallel hardware; below this core count
#: only the curve and the bitwise gates are enforced.
MIN_CORES_FOR_GATE = 4


def _artifact_path() -> str:
    return os.environ.get("BENCH_SHARD_JSON", "BENCH_shard.json")


def _kernel():
    spec = library.get("heat-2d")
    halo = required_halo(spec, GENERIC_AVX2, time_fusion=1)
    return compile_kernel(spec, GENERIC_AVX2, Grid(SHAPE, halo),
                          time_fusion=1)


def _recipe(kernel) -> KernelRecipe:
    return KernelRecipe(spec=kernel.plan.spec, machine=GENERIC_AVX2,
                        time_fusion=kernel.plan.time_fusion,
                        use_sdf=kernel.plan.use_sdf,
                        exec_backend="codegen")


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure() -> dict:
    kernel = _kernel()
    spec = kernel.plan.spec
    grid = kernel.grid_like(SHAPE, seed=42)
    points = 1
    for n in SHAPE:
        points *= n

    # single-process codegen baseline (one warm run off the clock)
    kernel.run(grid, STEPS, backend="codegen")
    baseline_t = _best_of(lambda: kernel.run(grid, STEPS,
                                             backend="codegen"))

    recipe = _recipe(kernel)
    curve = []
    for executor in EXECUTORS:
        for shards in SHARD_CURVE:
            with ShardRunner(spec, shards=shards,
                             temporal_block=TEMPORAL_BLOCK,
                             executor=executor, recipe=recipe,
                             exec_backend="codegen") as runner:
                runner.run(grid, STEPS)  # warm pool + per-worker programs
                t = _best_of(lambda: runner.run(grid, STEPS))
            curve.append({
                "executor": executor,
                "shards": shards,
                "seconds": t,
                "mstencil_s": points * STEPS / t / 1e6,
                "speedup": baseline_t / t,
            })

    at4 = [c["speedup"] for c in curve if c["shards"] == 4]
    cores = os.cpu_count() or 1
    return {
        "kernel": spec.name,
        "machine": GENERIC_AVX2.name,
        "grid": list(SHAPE),
        "steps": STEPS,
        "temporal_block": TEMPORAL_BLOCK,
        "baseline_seconds": baseline_t,
        "baseline_mstencil_s": points * STEPS / baseline_t / 1e6,
        "curve": curve,
        "speedup_at_4": max(at4),
        "speedup_floor": SPEEDUP_FLOOR,
        "cpu_count": cores,
        "gate_enforced": cores >= MIN_CORES_FOR_GATE,
    }


def _report(data: dict) -> None:
    path = _artifact_path()
    append_history(path, data)
    lines = [
        f"kernel          {data['kernel']} on "
        f"{'x'.join(map(str, data['grid']))} ({data['machine']}), "
        f"{data['steps']} steps, s={data['temporal_block']}",
        f"baseline        {data['baseline_seconds']:.3f} s "
        f"({data['baseline_mstencil_s']:.2f} MStencil/s, codegen, "
        f"1 process)",
    ]
    for c in data["curve"]:
        lines.append(
            f"{c['executor']:<7} x{c['shards']:<2}     "
            f"{c['seconds']:.3f} s ({c['mstencil_s']:.2f} MStencil/s, "
            f"{c['speedup']:.2f}x)")
    lines.append(
        f"gate            >= {data['speedup_floor']:.0f}x at 4 shards: "
        f"{data['speedup_at_4']:.2f}x "
        + ("(enforced)" if data["gate_enforced"] else
           f"(not enforced: {data['cpu_count']} CPU(s) < "
           f"{MIN_CORES_FOR_GATE})"))
    lines.append(f"artifact        {path}")
    emit("Sharded execution: halo exchange + temporal blocking", lines
         and "\n".join(lines))


_DATA = None


def _measured() -> dict:
    """Measure once per process; every gate shares one artifact entry."""
    global _DATA
    if _DATA is None:
        _DATA = measure()
        _report(_DATA)
    return _DATA


def test_sharded_reference_bitwise():
    """Reference-engine sharding (with temporal blocking and an uneven
    partition) must reproduce the serial reference bitwise."""
    spec = library.get("heat-2d")
    g = Grid.random((67, 48), spec.radius, seed=7)
    ref = apply_steps(spec, g, 5)
    got = run_sharded(spec, g, 5, shards=3, temporal_block=2)
    assert np.array_equal(ref.interior, got.interior)


def test_sharded_program_bitwise_including_temporal_blocking():
    """Program-engine sharding must match the unsharded codegen run
    bitwise, at s=1 and temporally blocked."""
    kernel = _kernel()
    g = kernel.grid_like((64, 128), seed=8)
    small = compile_kernel(kernel.plan.spec, GENERIC_AVX2,
                           Grid((64, 128), kernel.halo()), time_fusion=1)
    ref = small.run(g, 4, backend="codegen")
    for s in (1, 2, 4):
        got = small.run_sharded(g, 4, shards=4, temporal_block=s,
                                executor="thread", backend="codegen")
        assert np.array_equal(ref.interior, got.interior), f"s={s}"


def test_killed_shard_restored_bitwise():
    """A worker killed mid-superstep must be restored from the barrier
    checkpoint with zero bitwise drift."""
    spec = library.get("heat-2d")
    g = Grid.random((48, 32), spec.radius, seed=9)
    ref = apply_steps(spec, g, 4)
    plan = FaultPlan(rules=(FaultRule(site="pool.task_start",
                                      kind="kill"),), seed=0)
    with faults.inject(plan) as inj:
        got = run_sharded(spec, g, 4, shards=2, temporal_block=2,
                          executor="process")
    assert inj.injected_by_site().get("pool.task_start", 0) >= 1, (
        "the kill fault never fired")
    assert np.array_equal(ref.interior, got.interior)


def test_shard_speedup_curve():
    """The perf gate: the artifact always records the full 1/2/4/8
    curve; the >= 2x floor at 4 shards binds only on real multi-core
    hosts."""
    data = _measured()
    recorded = {(c["executor"], c["shards"]) for c in data["curve"]}
    assert recorded == {(e, s) for e in EXECUTORS for s in SHARD_CURVE}
    assert all(c["seconds"] > 0 for c in data["curve"])
    if not data["gate_enforced"]:
        import pytest
        pytest.skip(f"{data['cpu_count']} CPU(s): speedup gate needs "
                    f">= {MIN_CORES_FOR_GATE}")
    assert data["speedup_at_4"] >= data["speedup_floor"], (
        f"best 4-shard speedup {data['speedup_at_4']:.2f}x below the "
        f"{data['speedup_floor']:.0f}x floor "
        f"(baseline {data['baseline_seconds']:.3f}s)"
    )


if __name__ == "__main__":
    import pytest

    test_sharded_reference_bitwise()
    test_sharded_program_bitwise_including_temporal_blocking()
    test_killed_shard_restored_bitwise()
    try:
        test_shard_speedup_curve()
    except pytest.skip.Exception as skip:  # curve still ran + archived
        print(f"speedup gate skipped: {skip}")
    print("ok")
