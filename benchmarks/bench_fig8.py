"""Figure 8 — SDF's effect on shuffle vs computation time."""

from repro.config import PAPER_MACHINES
from repro.experiments import fig8

from _bench_utils import emit


def test_fig8_hotspots(once):
    results = once(fig8.data, PAPER_MACHINES)
    emit("Figure 8: SDF hotspot breakdown", fig8.run(PAPER_MACHINES))
    for mname, d in results.items():
        red = d["reduction"]
        # paper: shuffle -61.58%, compute -20.75%
        assert abs(red["shuffle"] - 0.6158) < 0.10
        assert red["compute"] > 0
