"""§4.6 discussion — Jigsaw across SSE / AVX2 / AVX-512."""

from repro.experiments import disc

from _bench_utils import emit


def test_disc_isa_generality(once):
    results = once(disc.data)
    emit("Discussion (§4.6): ISA generality", disc.run())
    for kernel, rows in results.items():
        assert all(d["correct"] for d in rows), kernel
