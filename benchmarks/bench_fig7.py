"""Figure 7 — the Jigsaw ablation (performance breakdown) on Box-2D9P."""

from repro.config import PAPER_MACHINES
from repro.experiments import fig7

from _bench_utils import emit


def test_fig7_ablation(once):
    results = once(fig7.data, PAPER_MACHINES)
    emit("Figure 7: ablation study", fig7.run(PAPER_MACHINES))
    for mname, res in results.items():
        for p in res["by_size"]:
            assert p.gstencil["+SDF"] > p.gstencil["+LBV"] > p.gstencil["base"]
