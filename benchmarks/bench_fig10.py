"""Figure 10 — parallel cache-blocked comparison (all Table-3 kernels,
all cores, vs SDSL/Pluto/Tessellation/Folding)."""

from repro.config import PAPER_MACHINES
from repro.experiments import fig10

from _bench_utils import emit

#: the paper's headline averages (§4.4)
PAPER_MEAN = {"amd-epyc-7v13": 2.148, "intel-xeon-6230r": 2.466}


def test_fig10_parallel_comparison(once):
    results = once(fig10.data, PAPER_MACHINES)
    emit("Figure 10: parallel cache-blocking comparison",
         fig10.run(PAPER_MACHINES))
    for mname, d in results.items():
        for kernel, r in d["per_kernel"].items():
            assert min(r, key=r.get) == "SDSL", (mname, kernel)
        assert abs(d["mean_speedup"] - PAPER_MEAN[mname]) \
            < 0.4 * PAPER_MEAN[mname], mname
        # §4.4: 4-step fusion shines on Heat-1D (paper: ~3x on average
        # against the baselines; vs the 2-step T-Jigsaw it is a clear win)
        heat = d["per_kernel"]["heat-1d"]
        assert heat["T-4 Jigsaw"] > heat["T-Jigsaw"]
