"""The serving-layer acceptance gates.

Drives three asyncio loads through a :class:`repro.server.StencilServer`
(deadline micro-batching + admission control over the kernel service)
and asserts the subsystem's contracts:

* **clean capacity** — ``BENCH_SERVICE_REQUESTS`` (default 1000)
  concurrent mixed-tenant requests, all completed, every response
  bitwise-identical to an uncontended single-request baseline, and
  p99 latency within the SLO (``BENCH_SERVICE_SLO_MS``);
* **chaos** — the same workload shape under a deterministic fault plan
  hitting the server sites (``server.enqueue``, ``server.batch_flush``)
  plus the execution sites underneath (``pool.task_start``,
  ``tile.sweep``) with raises and delays: every site must actually
  fire, every response must still be bitwise-correct, and p99 must stay
  within a degraded SLO;
* **overload** — the schedule is fired at a server whose admission
  ceiling only fits half of it: the overflow must come back as **fast**
  rejections (reject p99 within ``REJECT_SLO_MS``, not timeouts), the
  ``server.admission.rejected`` counter must equal the rejections the
  clients observed, and everything admitted must still be
  bitwise-correct.

Appends a timestamped entry (all three reports + gates) to
``BENCH_service.json`` (override via ``BENCH_SERVICE_JSON``) through
:func:`_bench_utils.append_history`.  Runs under pytest
(``pytest benchmarks/bench_service.py -s``) or stand-alone
(``python benchmarks/bench_service.py``).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from _bench_utils import append_history, attach_stages, emit  # noqa: E402

from repro import faults, obs  # noqa: E402
from repro.faults.plan import FaultPlan, FaultRule  # noqa: E402
from repro.server import (LoadConfig, reference_results,  # noqa: E402
                          run_load_sync)

SHAPE = (32, 32)
STEPS = 2
TENANTS = 4
KERNELS = ("heat-2d", "box-2d9p")
SEEDS = 3

#: concurrent requests in the clean run (env-reducible for smoke CI).
REQUESTS = int(os.environ.get("BENCH_SERVICE_REQUESTS", "1000"))

#: clean-run p99 SLO in milliseconds.  The schedule is fired all at
#: once, so per-request latency includes its share of the queueing
#: backlog — the SLO scales with the request count (and stays generous:
#: the gate is "the server kept batching under a thundering herd", not
#: a hardware benchmark).
SLO_MS = float(os.environ.get("BENCH_SERVICE_SLO_MS",
                              str(max(2_000.0, REQUESTS * 10.0))))

#: chaos runs absorb injected delays and bounded retries.
CHAOS_SLO_MS = 2.0 * SLO_MS

#: rejections must be fast — an overloaded server that makes clients
#: wait has failed even if it eventually says no.
REJECT_SLO_MS = float(os.environ.get("BENCH_SERVICE_REJECT_SLO_MS", "100"))

#: admission ceiling for the overload run; the schedule is 2x this.
OVERLOAD_DEPTH = max(8, min(64, REQUESTS // 4))

#: the chaos fault plan must hit every one of these sites.
CHAOS_SITES = ("server.enqueue", "server.batch_flush",
               "pool.task_start", "tile.sweep")

SERVER_KW = dict(max_batch=16, batch_window_s=0.004,
                 executor_workers=4, run_workers=4)


def _artifact_path() -> str:
    return os.environ.get("BENCH_SERVICE_JSON", "BENCH_service.json")


def _cfg(requests: int) -> LoadConfig:
    return LoadConfig(requests=requests, tenants=TENANTS, kernels=KERNELS,
                      shape=SHAPE, steps=STEPS, seeds=SEEDS)


def _chaos_plan() -> FaultPlan:
    """Deterministic: raises at both server sites (absorbed by the
    server's bounded retry), raises at the execution sites (absorbed by
    the service's retry/degrade ladder), plus delays everywhere to
    shuffle batch timing."""
    rules = []
    for site in CHAOS_SITES:
        rules.append(FaultRule(site=site, kind="raise", after=0, times=2,
                               every=7))
        rules.append(FaultRule(site=site, kind="delay", after=1, times=4,
                               every=5, delay_s=0.002))
    return FaultPlan(rules=tuple(rules), seed=0)


def measure() -> dict:
    cfg = _cfg(REQUESTS)
    references = reference_results(cfg)
    obs.enable(reset=True)
    try:
        # clean capacity: admission wide open, nothing may be rejected
        clean = run_load_sync(
            cfg, references=references,
            max_queue_depth=max(2048, 2 * REQUESTS),
            quota_rate=float("inf"), **SERVER_KW)

        # chaos: same shape, deterministic faults at the server + exec
        # sites; correctness must be untouched, latency may degrade
        with faults.inject(_chaos_plan()) as inj:
            chaos = run_load_sync(
                cfg, references=references,
                max_queue_depth=max(2048, 2 * REQUESTS),
                quota_rate=float("inf"), retries=3, **SERVER_KW)
        injected = dict(inj.injected_by_site())

        # overload: the same herd at a ceiling that fits half of it
        before = (obs.snapshot()["metrics"]["counters"]
                  .get("server.admission.rejected", 0))
        overload = run_load_sync(
            _cfg(2 * OVERLOAD_DEPTH), references=references,
            max_queue_depth=OVERLOAD_DEPTH,
            quota_rate=float("inf"), **SERVER_KW)
        rejected_counter = (obs.snapshot()["metrics"]["counters"]
                            .get("server.admission.rejected", 0)) - before

        data = {
            "shape": list(SHAPE),
            "steps": STEPS,
            "tenants": TENANTS,
            "kernels": list(KERNELS),
            "requests": REQUESTS,
            "slo_ms": SLO_MS,
            "chaos_slo_ms": CHAOS_SLO_MS,
            "reject_slo_ms": REJECT_SLO_MS,
            "overload_depth": OVERLOAD_DEPTH,
            "clean": clean.to_dict(),
            "chaos": chaos.to_dict(),
            "chaos_injected": dict(sorted(injected.items())),
            "overload": overload.to_dict(),
            "overload_rejected_counter": rejected_counter,
        }
        return attach_stages(data), clean, chaos, overload
    finally:
        obs.disable()


def _report(data: dict) -> None:
    path = _artifact_path()
    append_history(path, data)
    clean, chaos, overload = (data["clean"], data["chaos"],
                              data["overload"])
    lines = [
        f"workload        {data['requests']} concurrent requests, "
        f"{data['tenants']} tenants, {'+'.join(data['kernels'])} on "
        f"{'x'.join(map(str, data['shape']))}, {data['steps']} steps",
        f"clean           {clean['completed']} completed, "
        f"p50 {clean['p50_ms']:.1f} ms, p99 {clean['p99_ms']:.1f} ms "
        f"(SLO {data['slo_ms']:.0f}), "
        f"{clean['goodput_rps']:.0f} req/s, "
        f"mean batch {clean['batch_mean']:.1f}, "
        f"bitwise {'OK' if clean['bitwise_ok'] else 'FAIL'}",
        f"chaos           {chaos['completed']} completed under "
        f"{sum(data['chaos_injected'].values())} faults "
        f"({', '.join(f'{k}={v}' for k, v in data['chaos_injected'].items())}), "
        f"p99 {chaos['p99_ms']:.1f} ms (SLO {data['chaos_slo_ms']:.0f}), "
        f"bitwise {'OK' if chaos['bitwise_ok'] else 'FAIL'}",
        f"overload        depth {data['overload_depth']}, "
        f"{overload['completed']} completed / "
        f"{overload['rejected']} rejected, reject p99 "
        f"{overload['reject_p99_ms']:.2f} ms "
        f"(SLO {data['reject_slo_ms']:.0f}), counter "
        f"{data['overload_rejected_counter']}",
        f"artifact        {path}",
    ]
    emit("Serving layer: micro-batching + admission control",
         "\n".join(lines))


_DATA = None


def _measured():
    """Measure once per process; every gate shares one artifact entry."""
    global _DATA
    if _DATA is None:
        data, clean, chaos, overload = measure()
        _report(data)
        _DATA = (data, clean, chaos, overload)
    return _DATA


def test_clean_capacity_and_slo():
    """Every concurrent request completes, bitwise-correct, within the
    p99 SLO — no rejections with admission wide open."""
    data, clean, _, _ = _measured()
    assert clean.completed == data["requests"], (
        f"only {clean.completed}/{data['requests']} completed "
        f"(rejected={clean.rejected}, failed={clean.failed}: "
        f"{clean.errors[:3]})")
    assert clean.rejected == 0 and clean.failed == 0
    assert clean.bitwise_ok, (
        f"{len(clean.mismatches)} responses diverged from the "
        f"uncontended baseline: {clean.mismatches[:5]}")
    assert clean.p99_ms <= data["slo_ms"], (
        f"clean p99 {clean.p99_ms:.1f} ms over the "
        f"{data['slo_ms']:.0f} ms SLO")
    assert clean.batch_mean > 1.0, (
        f"mean batch {clean.batch_mean:.2f}: micro-batching never "
        f"coalesced anything under a {data['requests']}-request herd")


def test_chaos_bitwise_and_slo():
    """Faults at the server + execution sites must all fire, must not
    corrupt a single response, and must keep p99 within the degraded
    SLO."""
    data, _, chaos, _ = _measured()
    for site in CHAOS_SITES:
        assert data["chaos_injected"].get(site, 0) >= 1, (
            f"the fault plan never fired at {site}: "
            f"{data['chaos_injected']}")
    assert chaos.completed == data["requests"], (
        f"chaos run lost requests: {chaos.completed}/{data['requests']} "
        f"(failed={chaos.failed}: {chaos.errors[:3]})")
    assert chaos.bitwise_ok, (
        f"chaos corrupted {len(chaos.mismatches)} responses: "
        f"{chaos.mismatches[:5]}")
    assert chaos.p99_ms <= data["chaos_slo_ms"], (
        f"chaos p99 {chaos.p99_ms:.1f} ms over the degraded "
        f"{data['chaos_slo_ms']:.0f} ms SLO")


def test_overload_fast_rejections_and_accounting():
    """At 2x admission capacity the overflow is rejected fast (no
    timeouts), the rejection counter matches what clients saw, and the
    admitted half still computes correct answers."""
    data, _, _, overload = _measured()
    total = 2 * data["overload_depth"]
    assert overload.rejected > 0, (
        f"no rejections at 2x capacity (depth {data['overload_depth']}, "
        f"{total} requests)")
    assert overload.completed + overload.rejected + overload.failed == total
    assert overload.failed == 0, f"failures: {overload.errors[:3]}"
    assert overload.reject_reasons.get("queue", 0) == overload.rejected, (
        f"expected pure queue-depth rejections, got "
        f"{overload.reject_reasons}")
    assert overload.reject_p99_ms <= data["reject_slo_ms"], (
        f"rejections took p99 {overload.reject_p99_ms:.2f} ms — an "
        f"overloaded server must say no fast "
        f"(SLO {data['reject_slo_ms']:.0f} ms)")
    assert data["overload_rejected_counter"] == overload.rejected, (
        f"server.admission.rejected counted "
        f"{data['overload_rejected_counter']} but clients observed "
        f"{overload.rejected}")
    assert overload.bitwise_ok, (
        f"overload corrupted {len(overload.mismatches)} admitted "
        f"responses: {overload.mismatches[:5]}")


if __name__ == "__main__":
    test_clean_capacity_and_slo()
    test_chaos_bitwise_and_slo()
    test_overload_fast_rejections_and_accounting()
    print("ok")
