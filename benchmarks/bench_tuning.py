"""Autotuning bench — re-derives Table-3-like blockings from the model.

Times the exhaustive (scheme x tile x depth) search and asserts the tuned
configuration is at least as good as the paper's published blocking under
the same model (it should be: the paper's rows are inside the candidate
space's neighbourhood)."""

from repro.analysis.report import render_table
from repro.config import AMD_EPYC_7V13
from repro.parallel.simulator import MulticoreModel, ParallelSetup
from repro.schemes import model_cost
from repro.stencils.library import table3_config
from repro.tuning import autotune

from _bench_utils import emit

KERNELS = ("heat-1d", "heat-2d", "box-2d9p", "heat-3d")


def _tune_all():
    rows = []
    model = MulticoreModel(AMD_EPYC_7V13)
    for kernel in KERNELS:
        cfg = table3_config(kernel)
        steps = min(cfg.time_steps, 200)
        result = autotune(cfg.spec, AMD_EPYC_7V13,
                          problem_size=cfg.problem_size, steps=steps)
        # the paper's blocking, evaluated under the same model
        paper = model.estimate(
            model_cost(result.best.scheme, cfg.spec, AMD_EPYC_7V13),
            cfg.spec, points=cfg.grid_points(), steps=steps,
            cores=AMD_EPYC_7V13.total_cores,
            setup=ParallelSetup(tile_shape=cfg.tile_shape,
                                time_depth=cfg.time_depth),
        )
        rows.append([
            kernel,
            "x".join(map(str, cfg.tile_shape)) + f"/Tb{cfg.time_depth}",
            paper.gstencil_s,
            "x".join(map(str, result.best.tile_shape))
            + f"/Tb{result.best.time_depth}",
            result.best.gstencil_s,
            result.evaluated,
        ])
    return rows


def test_autotuner_rederives_table3(once):
    rows = once(_tune_all)
    emit("Autotuning vs the paper's Table-3 blocking (AMD model)",
         render_table(["kernel", "paper blocking", "GS/s",
                       "tuned blocking", "GS/s", "candidates"], rows))
    for kernel, _pb, paper_gs, _tb, tuned_gs, _n in rows:
        assert tuned_gs >= paper_gs * 0.999, kernel
