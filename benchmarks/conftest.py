"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one of the paper's tables/figures
(printing the same rows/series the paper reports) and times the
reproduction pipeline with pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


@pytest.fixture
def once(benchmark):
    """Benchmark a heavy function exactly once per round (experiment
    regenerations are deterministic; statistical resampling would just
    repeat identical work)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return run
