"""Figure 11 — multicore scalability of Jigsaw / T-Jigsaw."""

from repro.config import AMD_EPYC_7V13, PAPER_MACHINES
from repro.experiments import fig11

from _bench_utils import emit


def test_fig11_scalability(once):
    results = once(fig11.data, PAPER_MACHINES)
    emit("Figure 11: scalability", fig11.run(PAPER_MACHINES))
    amd = results[AMD_EPYC_7V13.name]
    # near-linear 1-D scaling on the single-socket machine
    c = amd["1D"]["cores"]
    heat1d = amd["1D"]["series"]["heat-1d/jigsaw"]
    assert heat1d[-1] / heat1d[0] > 0.9 * c[-1] / c[0]
    # 3-D rolls off
    heat3d = amd["3D"]["series"]["heat-3d/jigsaw"]
    assert heat3d[-1] / heat3d[0] < 0.9 * c[-1] / c[0]
