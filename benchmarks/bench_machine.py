"""The execution-backend speedup gates.

Times one single sweep of the 2-D star-radius-2 kernel on a 512x512 grid
through the three execution backends of
:func:`repro.vectorize.driver.run_program` — the per-instruction
interpreter, the batched row-tensor engine, and the emitted-source
codegen engine — and asserts their contracts:

* **bitwise identical** output grids across all three backends,
* a **>= 10x** batch-over-interpreter single-sweep speedup floor, and
* a **>= 2x** codegen-over-batch single-sweep speedup floor.

Appends a timestamped run entry to ``BENCH_machine.json`` (path
overridable via ``BENCH_MACHINE_JSON``) — the artifact is a list of runs,
newest last, capped and deduplicated by
:func:`_bench_utils.append_history` so CI archives build up a bounded
perf history; a legacy single-run dict is folded in as the first entry.
Runs under pytest
(``pytest benchmarks/bench_machine.py -s``) or stand-alone
(``python benchmarks/bench_machine.py``).
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from _bench_utils import append_history, attach_stages, emit, observed  # noqa: E402

from repro.config import GENERIC_AVX2  # noqa: E402
from repro.schemes import generate, scheme_halo  # noqa: E402
from repro.stencils.grid import Grid  # noqa: E402
from repro.stencils.spec import star  # noqa: E402
from repro.vectorize.driver import run_program  # noqa: E402

SHAPE = (512, 512)
SPEEDUP_FLOOR = 10.0

#: the codegen engine must beat the batch engine by at least this factor
#: on the same sweep (the tentpole gate: emitted straight-line source
#: amortizes the per-instruction closure dispatch the batch engine pays
#: per outer-loop environment)
CODEGEN_SPEEDUP_FLOOR = 2.0

#: traced execution must stay within this factor of untraced wall-clock
#: (the observability contract: near-zero overhead when enabled, zero
#: when disabled)
TRACE_OVERHEAD_CEILING = 1.05


def _artifact_path() -> str:
    return os.environ.get("BENCH_MACHINE_JSON", "BENCH_machine.json")


def _time_sweep(program, grid, backend: str, *, repeats: int) -> tuple:
    """(best seconds, result grid) over ``repeats`` single sweeps."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_program(program, grid, program.steps_per_iter,
                             backend=backend)
        best = min(best, time.perf_counter() - t0)
    return best, result


def measure() -> dict:
    spec = star(2, 2, center=-3.0, arm=[0.5, 0.25], name="bench-star-2d-r2")
    halo = scheme_halo("jigsaw", spec, GENERIC_AVX2)
    grid = Grid.random(SHAPE, halo, seed=42)
    program = generate("jigsaw", spec, GENERIC_AVX2, grid)

    # warm every path (batch/codegen compilation, numpy allocator) off
    # the clock: best-of-N absorbs the one-time specialization cost
    batch_t, batch_grid = _time_sweep(program, grid, "batch", repeats=3)
    codegen_t, codegen_grid = _time_sweep(program, grid, "codegen",
                                          repeats=5)
    interp_t, interp_grid = _time_sweep(program, grid, "interp", repeats=1)

    # the observability overhead gate: the same batch sweep with spans +
    # metrics recording on must be bitwise identical and within
    # TRACE_OVERHEAD_CEILING of the untraced best (best-of-N on both
    # sides keeps scheduler noise out of the ratio)
    untraced_t, _ = _time_sweep(program, grid, "batch", repeats=5)
    with observed():
        traced_t, traced_grid = _time_sweep(program, grid, "batch",
                                            repeats=5)
        stages = {}
        attach_stages(stages)
    traced_identical = bool(np.array_equal(traced_grid.data,
                                           batch_grid.data))

    identical = bool(np.array_equal(batch_grid.data, interp_grid.data))
    three_way = bool(identical and np.array_equal(codegen_grid.data,
                                                  batch_grid.data))
    points = grid.npoints()
    data = {
        "traced_seconds": traced_t,
        "untraced_seconds": untraced_t,
        "trace_overhead": traced_t / untraced_t,
        "trace_overhead_ceiling": TRACE_OVERHEAD_CEILING,
        "traced_bitwise_identical": traced_identical,
        "kernel": spec.name,
        "scheme": "jigsaw",
        "machine": GENERIC_AVX2.name,
        "grid": list(SHAPE),
        "steps": program.steps_per_iter,
        "interp_seconds": interp_t,
        "batch_seconds": batch_t,
        "codegen_seconds": codegen_t,
        "interp_mstencil_s": points / interp_t / 1e6,
        "batch_mstencil_s": points / batch_t / 1e6,
        "codegen_mstencil_s": points / codegen_t / 1e6,
        "speedup": interp_t / batch_t,
        "speedup_floor": SPEEDUP_FLOOR,
        "codegen_speedup_over_batch": batch_t / codegen_t,
        "codegen_speedup_floor": CODEGEN_SPEEDUP_FLOOR,
        "bitwise_identical": identical,
        "three_way_bitwise": three_way,
    }
    data.update(stages)  # the per-stage span/metric breakdown, if any
    return data


def _report(data: dict) -> None:
    path = _artifact_path()
    append_history(path, data)  # capped, consecutive-duplicate-free
    emit(
        "Machine backends: codegen vs batch vs interpreter",
        "\n".join([
            f"kernel          {data['kernel']} on "
            f"{'x'.join(map(str, data['grid']))} ({data['machine']})",
            f"interpreter     {data['interp_seconds']:.3f} s "
            f"({data['interp_mstencil_s']:.2f} MStencil/s)",
            f"batch           {data['batch_seconds']:.3f} s "
            f"({data['batch_mstencil_s']:.2f} MStencil/s)",
            f"codegen         {data['codegen_seconds']:.3f} s "
            f"({data['codegen_mstencil_s']:.2f} MStencil/s)",
            f"batch speedup   {data['speedup']:.1f}x over interp "
            f"(floor {data['speedup_floor']:.0f}x)",
            f"codegen speedup {data['codegen_speedup_over_batch']:.1f}x "
            f"over batch (floor {data['codegen_speedup_floor']:.0f}x)",
            f"bitwise         three-way {data['three_way_bitwise']}",
            f"traced overhead {data['trace_overhead']:.3f}x "
            f"(ceiling {data['trace_overhead_ceiling']:.2f}x)",
            f"artifact        {path}",
        ]),
    )


_DATA = None


def _measured() -> dict:
    """Measure once per process; both gates share one artifact entry."""
    global _DATA
    if _DATA is None:
        _DATA = measure()
        _report(_DATA)
    return _DATA


def test_batch_backend_speedup():
    data = _measured()
    assert data["bitwise_identical"], (
        "batch backend diverged bitwise from the interpreter"
    )
    assert data["speedup"] >= SPEEDUP_FLOOR, (
        f"batch speedup {data['speedup']:.1f}x below the "
        f"{SPEEDUP_FLOOR:.0f}x floor"
    )


def test_codegen_backend_speedup():
    """The codegen gate: emitted-source execution must agree bitwise
    with both other backends and beat the batch engine by the floor."""
    data = _measured()
    assert data["three_way_bitwise"], (
        "codegen backend diverged bitwise from batch/interp"
    )
    assert data["codegen_speedup_over_batch"] >= CODEGEN_SPEEDUP_FLOOR, (
        f"codegen speedup {data['codegen_speedup_over_batch']:.1f}x over "
        f"batch, below the {CODEGEN_SPEEDUP_FLOOR:.0f}x floor"
    )


def test_trace_overhead_within_ceiling():
    """The observability contract: recording spans + metrics must not
    change results bitwise and must stay within 5% of untraced
    wall-clock on the same backend."""
    data = _measured()
    assert data["traced_bitwise_identical"], (
        "tracing changed the executed results bitwise"
    )
    assert data["trace_overhead"] <= data["trace_overhead_ceiling"], (
        f"traced run {data['trace_overhead']:.3f}x the untraced best, "
        f"over the {data['trace_overhead_ceiling']:.2f}x ceiling"
    )
    assert data.get("stages"), "profiled run recorded no stage breakdown"


if __name__ == "__main__":
    test_batch_backend_speedup()
    test_codegen_backend_speedup()
    test_trace_overhead_within_ceiling()
    print("ok")
