"""The autotuner acceptance gate: tuned never loses, and somewhere wins.

For a few cheap library workloads, runs a full model-guided + empirical
search (:class:`repro.tune.Tuner`, in-memory database) and compares the
stored winner against the planner's static default configuration using
the search's *own* trial measurements — the baseline is force-included in
every search, so both numbers come from the same timing harness and the
comparison cannot flake on a separate re-run.  Asserts:

* per workload, the tuned winner is never more than 5% slower than the
  default planner choice (by construction the winner is the trial
  maximum, so this guards the harness itself), and
* at least one workload shows a measurable win (>= 1.2x) — on this
  hardware the search should discover that the numpy fast path beats the
  simulated-machine default by orders of magnitude.

Emits ``BENCH_tune.json`` (override via ``BENCH_TUNE_JSON``).  Runs under
pytest (``pytest benchmarks/bench_tune.py -s``) or stand-alone.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from _bench_utils import attach_stages, emit, observed  # noqa: E402

from repro.config import GENERIC_AVX2  # noqa: E402
from repro.stencils import library  # noqa: E402
from repro.tune import TuneBudget, Tuner, TuningDB, default_config  # noqa: E402

#: (kernel, interior shape) — small enough that the simulated-machine
#: baseline trials stay in the tens of milliseconds
WORKLOADS = (
    ("heat-1d", (1024,)),
    ("heat-2d", (64, 64)),
    ("star-2d9p", (64, 64)),
)
SLOWDOWN_FLOOR = 0.95   #: tuned must keep >= 95% of the default's rate
WIN_RATIO = 1.2         #: at least one workload must beat default by this


def _artifact_path() -> str:
    return os.environ.get("BENCH_TUNE_JSON", "BENCH_tune.json")


def measure() -> list:
    machine = GENERIC_AVX2
    budget = TuneBudget(max_trials=5, warmup=0, repeats=2,
                        trial_timeout_s=60.0, patience=5)
    tuner = Tuner(machine, db=TuningDB(None), budget=budget)
    results = []
    for name, shape in WORKLOADS:
        spec = library.get(name)
        with observed():
            report = tuner.tune(spec, shape, steps=2)
            stages = {}
            attach_stages(stages)
        default_key = default_config(spec, machine).as_dict()
        baseline = next(t for t in report.trials
                        if t.config.as_dict() == default_key)
        assert baseline.ok, f"{name}: default-config trial failed"
        results.append({
            "kernel": name,
            "shape": list(shape),
            "machine": machine.name,
            "default_config": baseline.config.label(),
            "default_mstencil_s": baseline.mstencil_s,
            "tuned_config": report.best.config.label(),
            "tuned_mstencil_s": report.best.mstencil_s,
            "ratio": report.best.mstencil_s / baseline.mstencil_s,
            "trials": len(report.trials),
            "candidates": report.candidates,
            **stages,  # per-stage span/metric breakdown of the search
        })
    return results


def _report(results: list) -> None:
    path = _artifact_path()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    lines = []
    for r in results:
        lines.append(
            f"{r['kernel']:<12} default {r['default_mstencil_s']:8.2f} "
            f"-> tuned {r['tuned_mstencil_s']:8.2f} MStencil/s "
            f"({r['ratio']:.1f}x, {r['tuned_config']})")
    lines.append(f"artifact        {path}")
    emit("Autotuner: tuned vs planner default", "\n".join(lines))


def test_tuned_never_loses_and_somewhere_wins():
    results = measure()
    _report(results)
    for r in results:
        assert r["ratio"] >= SLOWDOWN_FLOOR, (
            f"{r['kernel']}: tuned config {r['tuned_config']} is "
            f"{r['ratio']:.2f}x the default — more than 5% slower")
    best = max(r["ratio"] for r in results)
    assert best >= WIN_RATIO, (
        f"no workload improved on the planner default "
        f"(best ratio {best:.2f}x < {WIN_RATIO}x)")


# ---------------------------------------------------------------------------
# the model-driven tuner's Table-3 rederivation (merged from the former
# benchmarks/bench_tuning.py): the analytic search must recover blockings
# at least as good as the paper's published rows under the same model
# ---------------------------------------------------------------------------

from repro.analysis.report import render_table  # noqa: E402
from repro.config import AMD_EPYC_7V13  # noqa: E402
from repro.parallel.simulator import MulticoreModel, ParallelSetup  # noqa: E402
from repro.schemes import model_cost  # noqa: E402
from repro.stencils.library import table3_config  # noqa: E402
from repro.tuning import autotune  # noqa: E402

MODEL_KERNELS = ("heat-1d", "heat-2d", "box-2d9p", "heat-3d")


def _tune_all():
    rows = []
    model = MulticoreModel(AMD_EPYC_7V13)
    for kernel in MODEL_KERNELS:
        cfg = table3_config(kernel)
        steps = min(cfg.time_steps, 200)
        result = autotune(cfg.spec, AMD_EPYC_7V13,
                          problem_size=cfg.problem_size, steps=steps)
        # the paper's blocking, evaluated under the same model
        paper = model.estimate(
            model_cost(result.best.scheme, cfg.spec, AMD_EPYC_7V13),
            cfg.spec, points=cfg.grid_points(), steps=steps,
            cores=AMD_EPYC_7V13.total_cores,
            setup=ParallelSetup(tile_shape=cfg.tile_shape,
                                time_depth=cfg.time_depth),
        )
        rows.append([
            kernel,
            "x".join(map(str, cfg.tile_shape)) + f"/Tb{cfg.time_depth}",
            paper.gstencil_s,
            "x".join(map(str, result.best.tile_shape))
            + f"/Tb{result.best.time_depth}",
            result.best.gstencil_s,
            result.evaluated,
        ])
    return rows


def test_autotuner_rederives_table3():
    rows = _tune_all()
    emit("Autotuning vs the paper's Table-3 blocking (AMD model)",
         render_table(["kernel", "paper blocking", "GS/s",
                       "tuned blocking", "GS/s", "candidates"], rows))
    for kernel, _pb, paper_gs, _tb, tuned_gs, _n in rows:
        assert tuned_gs >= paper_gs * 0.999, kernel


if __name__ == "__main__":
    test_tuned_never_loses_and_somewhere_wins()
    test_autotuner_rederives_table3()
    print("ok")
