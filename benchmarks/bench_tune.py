"""The autotuner acceptance gate: tuned never loses, and somewhere wins.

For a few cheap library workloads, runs a full model-guided + empirical
search (:class:`repro.tune.Tuner`, in-memory database) and compares the
stored winner against the planner's static default configuration using
the search's *own* trial measurements — the baseline is force-included in
every search, so both numbers come from the same timing harness and the
comparison cannot flake on a separate re-run.  Asserts:

* per workload, the tuned winner is never more than 5% slower than the
  default planner choice (by construction the winner is the trial
  maximum, so this guards the harness itself), and
* at least one workload shows a measurable win (>= 1.2x) — on this
  hardware the search should discover that the numpy fast path beats the
  simulated-machine default by orders of magnitude.

The second gate covers the *online* tuner: a cold service driven by
:class:`repro.tune.OnlineTuner` must converge to within 5% of the
offline-tuned throughput for the same search space — without ever
blocking a request (a live load against ``online_tune=True`` finishes
with zero failures and zero rejections, bitwise-verified).  Its record
(``mode: "online"``) is appended to the same artifact.
``BENCH_TUNE_ONLINE_REQUESTS`` shrinks the live phase for CI.

Emits ``BENCH_tune.json`` (override via ``BENCH_TUNE_JSON``).  Runs under
pytest (``pytest benchmarks/bench_tune.py -s``) or stand-alone.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from _bench_utils import attach_stages, emit, observed  # noqa: E402

from repro.config import GENERIC_AVX2  # noqa: E402
from repro.stencils import library  # noqa: E402
from repro.tune import TuneBudget, Tuner, TuningDB, default_config  # noqa: E402

#: (kernel, interior shape) — small enough that the simulated-machine
#: baseline trials stay in the tens of milliseconds
WORKLOADS = (
    ("heat-1d", (1024,)),
    ("heat-2d", (64, 64)),
    ("star-2d9p", (64, 64)),
)
SLOWDOWN_FLOOR = 0.95   #: tuned must keep >= 95% of the default's rate
WIN_RATIO = 1.2         #: at least one workload must beat default by this


def _artifact_path() -> str:
    return os.environ.get("BENCH_TUNE_JSON", "BENCH_tune.json")


def measure() -> list:
    machine = GENERIC_AVX2
    budget = TuneBudget(max_trials=5, warmup=0, repeats=2,
                        trial_timeout_s=60.0, patience=5)
    tuner = Tuner(machine, db=TuningDB(None), budget=budget)
    results = []
    for name, shape in WORKLOADS:
        spec = library.get(name)
        with observed():
            report = tuner.tune(spec, shape, steps=2)
            stages = {}
            attach_stages(stages)
        default_key = default_config(spec, machine).as_dict()
        baseline = next(t for t in report.trials
                        if t.config.as_dict() == default_key)
        assert baseline.ok, f"{name}: default-config trial failed"
        results.append({
            "kernel": name,
            "shape": list(shape),
            "machine": machine.name,
            "default_config": baseline.config.label(),
            "default_mstencil_s": baseline.mstencil_s,
            "tuned_config": report.best.config.label(),
            "tuned_mstencil_s": report.best.mstencil_s,
            "ratio": report.best.mstencil_s / baseline.mstencil_s,
            "trials": len(report.trials),
            "candidates": report.candidates,
            **stages,  # per-stage span/metric breakdown of the search
        })
    return results


def _report(results: list) -> None:
    path = _artifact_path()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    lines = []
    for r in results:
        lines.append(
            f"{r['kernel']:<12} default {r['default_mstencil_s']:8.2f} "
            f"-> tuned {r['tuned_mstencil_s']:8.2f} MStencil/s "
            f"({r['ratio']:.1f}x, {r['tuned_config']})")
    lines.append(f"artifact        {path}")
    emit("Autotuner: tuned vs planner default", "\n".join(lines))


def test_tuned_never_loses_and_somewhere_wins():
    results = measure()
    _report(results)
    for r in results:
        assert r["ratio"] >= SLOWDOWN_FLOOR, (
            f"{r['kernel']}: tuned config {r['tuned_config']} is "
            f"{r['ratio']:.2f}x the default — more than 5% slower")
    best = max(r["ratio"] for r in results)
    assert best >= WIN_RATIO, (
        f"no workload improved on the planner default "
        f"(best ratio {best:.2f}x < {WIN_RATIO}x)")


# ---------------------------------------------------------------------------
# the online-tuning convergence gate: a cold service reaches the offline
# winner's throughput through idle-slot exploration alone, and a live
# load served meanwhile never sees a blocked request
# ---------------------------------------------------------------------------

from repro.core.cache import KernelCache  # noqa: E402
from repro.server import (  # noqa: E402
    LoadConfig,
    StencilServer,
    reference_results,
    run_load_sync,
)
from repro.service import KernelService  # noqa: E402
from repro.tune import OnlineTuneConfig  # noqa: E402
from repro.tune.engine import measure as measure_trial  # noqa: E402

ONLINE_KERNEL, ONLINE_SHAPE = "heat-1d", (1024,)
#: the space both searches cover (``shard`` excluded: the online tuner
#: never spins process pools inside idle slots)
ONLINE_ENGINES = ("machine", "numpy", "tiled")
ONLINE_BACKENDS = ("auto", "interp")
CONVERGENCE_FLOOR = 0.95  #: online incumbent keeps >= 95% of offline rate


def _online_requests() -> int:
    return int(os.environ.get("BENCH_TUNE_ONLINE_REQUESTS", "64"))


def measure_online() -> dict:
    machine = GENERIC_AVX2
    spec = library.get(ONLINE_KERNEL)

    # the offline reference: a full blocking search over the same space
    budget = TuneBudget(max_trials=6, warmup=0, repeats=2,
                        trial_timeout_s=60.0, patience=6)
    offline = Tuner(machine, db=TuningDB(None), budget=budget).tune(
        spec, ONLINE_SHAPE, steps=2,
        engines=ONLINE_ENGINES, exec_backends=ONLINE_BACKENDS)

    # a cold service converges through idle-slot exploration alone
    svc = KernelService(machine)
    tuner = svc.online_tuner(config=OnlineTuneConfig(
        trial_steps=2, repeats=2, engines=ONLINE_ENGINES,
        exec_backends=ONLINE_BACKENDS))
    tuner.observe(spec, ONLINE_SHAPE, steps=2)
    with observed():
        steps_taken = 0
        while not tuner.converged() and steps_taken < 500:
            tuner.step()
            steps_taken += 1
    stats = tuner.stats()
    incumbent = svc.tuned_config(spec, ONLINE_SHAPE)
    if incumbent is None:  # no promotion: still serving the default
        incumbent = default_config(spec, machine)

    # back-to-back re-measure on one fresh harness (identical configs
    # trivially tie — no re-run, the ratio cannot flake on noise)
    if incumbent.as_dict() == offline.best.config.as_dict():
        offline_rate = online_rate = offline.best.mstencil_s
    else:
        harness = TuneBudget(max_trials=1, warmup=1, repeats=3,
                             trial_timeout_s=60.0)
        cache = KernelCache(None)
        off = measure_trial(spec, machine, offline.best.config,
                            ONLINE_SHAPE, steps=4, budget=harness,
                            cache=cache)
        on = measure_trial(spec, machine, incumbent, ONLINE_SHAPE,
                           steps=4, budget=harness, cache=cache)
        assert off.ok and on.ok, (off.error, on.error)
        offline_rate, online_rate = off.mstencil_s, on.mstencil_s

    # the live phase: tuning on, a full load, nothing ever blocked
    requests = _online_requests()
    lcfg = LoadConfig(requests=requests, kernels=(ONLINE_KERNEL,),
                      shape=ONLINE_SHAPE, steps=2, seeds=2)
    server = StencilServer(machine=machine, online_tune=True,
                           online_tune_config=OnlineTuneConfig(
                               trial_steps=2, engines=ONLINE_ENGINES,
                               exec_backends=ONLINE_BACKENDS))
    report = run_load_sync(lcfg, server=server,
                           references=reference_results(lcfg, machine))
    live = server.online_tuner.stats()

    return {
        "mode": "online",
        "kernel": ONLINE_KERNEL,
        "shape": list(ONLINE_SHAPE),
        "machine": machine.name,
        "offline_config": offline.best.config.label(),
        "offline_mstencil_s": offline_rate,
        "online_config": incumbent.label(),
        "online_mstencil_s": online_rate,
        "ratio": online_rate / offline_rate,
        "steps": steps_taken,
        "trials": stats["trials"],
        "promotions": stats["promotions"],
        "verified": stats["verified"],
        "verify_failures": stats["verify_failures"],
        "live_requests": requests,
        "live_completed": report.completed,
        "live_rejected": report.rejected,
        "live_failed": report.failed,
        "live_bitwise_ok": report.bitwise_ok,
        "live_trials": live["trials"],
        "live_gated": live["gated"],
        "live_promotions": live["promotions"],
    }


def _append_online(record: dict) -> None:
    path = _artifact_path()
    results: list = []
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                loaded = json.load(fh)
            if isinstance(loaded, list):
                results = [r for r in loaded
                           if not (isinstance(r, dict)
                                   and r.get("mode") == "online")]
        except (OSError, ValueError):
            results = []
    results.append(record)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    emit("Online tuning: cold convergence vs the offline search",
         f"offline {record['offline_mstencil_s']:8.2f} "
         f"({record['offline_config']})\n"
         f"online  {record['online_mstencil_s']:8.2f} "
         f"({record['online_config']}) "
         f"= {record['ratio']:.2f}x after {record['trials']} trial(s)\n"
         f"live    {record['live_completed']}/{record['live_requests']} "
         f"served, {record['live_rejected']} rejected, "
         f"{record['live_failed']} failed, "
         f"{record['live_trials']} trial(s) in idle slots "
         f"({record['live_gated']} gated)\n"
         f"artifact        {_artifact_path()}")


def test_online_tuning_converges_without_blocking():
    record = measure_online()
    _append_online(record)
    assert record["ratio"] >= CONVERGENCE_FLOOR, (
        f"online incumbent {record['online_config']} reaches only "
        f"{record['ratio']:.2f}x of the offline winner "
        f"{record['offline_config']}")
    assert record["live_completed"] == record["live_requests"]
    assert record["live_rejected"] == 0 and record["live_failed"] == 0, (
        "online tuning must never block or fail a request")
    assert record["live_bitwise_ok"], "served results must stay bitwise"
    assert record["verify_failures"] == 0
    assert record["promotions"] <= record["verified"], (
        "every promotion must have passed the bitwise gate")


# ---------------------------------------------------------------------------
# the model-driven tuner's Table-3 rederivation (merged from the former
# benchmarks/bench_tuning.py): the analytic search must recover blockings
# at least as good as the paper's published rows under the same model
# ---------------------------------------------------------------------------

from repro.analysis.report import render_table  # noqa: E402
from repro.config import AMD_EPYC_7V13  # noqa: E402
from repro.parallel.simulator import MulticoreModel, ParallelSetup  # noqa: E402
from repro.schemes import model_cost  # noqa: E402
from repro.stencils.library import table3_config  # noqa: E402
from repro.tuning import autotune  # noqa: E402

MODEL_KERNELS = ("heat-1d", "heat-2d", "box-2d9p", "heat-3d")


def _tune_all():
    rows = []
    model = MulticoreModel(AMD_EPYC_7V13)
    for kernel in MODEL_KERNELS:
        cfg = table3_config(kernel)
        steps = min(cfg.time_steps, 200)
        result = autotune(cfg.spec, AMD_EPYC_7V13,
                          problem_size=cfg.problem_size, steps=steps)
        # the paper's blocking, evaluated under the same model
        paper = model.estimate(
            model_cost(result.best.scheme, cfg.spec, AMD_EPYC_7V13),
            cfg.spec, points=cfg.grid_points(), steps=steps,
            cores=AMD_EPYC_7V13.total_cores,
            setup=ParallelSetup(tile_shape=cfg.tile_shape,
                                time_depth=cfg.time_depth),
        )
        rows.append([
            kernel,
            "x".join(map(str, cfg.tile_shape)) + f"/Tb{cfg.time_depth}",
            paper.gstencil_s,
            "x".join(map(str, result.best.tile_shape))
            + f"/Tb{result.best.time_depth}",
            result.best.gstencil_s,
            result.evaluated,
        ])
    return rows


def test_autotuner_rederives_table3():
    rows = _tune_all()
    emit("Autotuning vs the paper's Table-3 blocking (AMD model)",
         render_table(["kernel", "paper blocking", "GS/s",
                       "tuned blocking", "GS/s", "candidates"], rows))
    for kernel, _pb, paper_gs, _tb, tuned_gs, _n in rows:
        assert tuned_gs >= paper_gs * 0.999, kernel


if __name__ == "__main__":
    test_tuned_never_loses_and_somewhere_wins()
    test_online_tuning_converges_without_blocking()
    test_autotuner_rederives_table3()
    print("ok")
