"""Table 1 — cross-lane vs in-lane instruction costs.

Regenerates the cost rows and micro-benchmarks the simulated execution of
the four shuffle instructions (semantic interpreter throughput)."""

import numpy as np

from repro.experiments import table1
from repro.machine.isa import Instr, Op, execute_alu

from _bench_utils import emit


def test_table1_rows(once):
    rows = once(table1.data)
    emit("Table 1: shuffle instruction costs", table1.run())
    assert len(rows) == 8
    by_instr = {(d["machine"], d["instruction"]): d for d in rows}
    for (_, instr), d in by_instr.items():
        assert d["latency"] == d["paper_latency"]


def _shuffle_workload():
    regs = {"a": np.arange(4.0), "b": np.arange(4.0, 8.0)}
    instrs = [
        Instr(Op.SHUFPD, dst="s", srcs=("a", "b"), imm=0b0101),
        Instr(Op.PERMILPD, dst="p", srcs=("a",), imm=0b0110),
        Instr(Op.PERM2F128, dst="c", srcs=("a", "b"), imm=(1, 2)),
        Instr(Op.PERMPD, dst="q", srcs=("a",), imm=(3, 2, 1, 0)),
    ]
    for _ in range(100):
        for instr in instrs:
            execute_alu(instr, regs, 4)
    return regs["q"]


def test_simulated_shuffle_throughput(benchmark):
    out = benchmark(_shuffle_workload)
    assert out.shape == (4,)
