"""Design-choice ablations called out in DESIGN.md (beyond the paper's
own Figure 7):

* structured (centre-column-residualized) vs plain-SVD decomposition —
  shuffle counts of the resulting instruction streams;
* LBV's butterfly vs the transposition (Folding) and window-shuffle
  (Reorg) data organizations — cross-lane counts per vector;
* ITM depth sweep on Heat-1D — per-step instruction amortization.
"""

from repro.config import GENERIC_AVX2
from repro.core.jigsaw import generate_jigsaw, required_halo
from repro.core.sdf import flatten_terms, structured_terms
from repro.schemes import model_program
from repro.stencils import library
from repro.stencils.grid import Grid
from repro.analysis.report import render_table

from _bench_utils import emit


def _jig_mix(spec, terms=None, fusion=1):
    shape = (4,) * (spec.ndim - 1) + (48,)
    g = Grid(shape, required_halo(spec, GENERIC_AVX2, time_fusion=fusion))
    prog = generate_jigsaw(spec, GENERIC_AVX2, g, time_fusion=fusion,
                           terms=terms)
    return prog.per_vector_mix()


def test_structured_vs_svd_decomposition(once):
    def run():
        rows = []
        for kernel in ("heat-2d", "box-2d9p", "star-2d9p", "heat-3d"):
            spec = library.get(kernel)
            svd = _jig_mix(spec, terms=flatten_terms(spec))
            structured = _jig_mix(spec, terms=structured_terms(spec))
            rows.append([kernel, svd["C"] + svd["I"],
                         structured["C"] + structured["I"]])
        return rows

    rows = once(run)
    emit("Ablation: SDF decomposition strategy (shuffles/vector)",
         render_table(["kernel", "plain SVD", "structured (ours)"], rows))
    for _, svd_shuf, structured_shuf in rows:
        assert structured_shuf <= svd_shuf


def test_cross_lane_by_data_organization(once):
    def run():
        rows = []
        spec = library.get("heat-2d")
        for scheme in ("reorg", "folding", "jigsaw"):
            mix = model_program(scheme, spec, GENERIC_AVX2).per_vector_mix()
            rows.append([scheme, mix["C"], mix["I"]])
        return rows

    rows = once(run)
    emit("Ablation: cross-lane by data organization (heat-2d)",
         render_table(["scheme", "cross-lane/vec", "in-lane/vec"], rows))
    by = {r[0]: r[1] for r in rows}
    assert by["jigsaw"] < by["folding"]


def test_itm_depth_sweep(once):
    def run():
        spec = library.get("heat-1d")
        rows = []
        for s in (1, 2, 3, 4):
            mix = _jig_mix(spec, fusion=s)
            rows.append([s, mix["L"], mix["S"], mix["C"], mix["I"],
                         mix["A"]])
        return rows

    rows = once(run)
    emit("Ablation: ITM fusion depth on heat-1d (per vector per step)",
         render_table(["depth", "L", "S", "C", "I", "A"], rows))
    # §3.3: loads/stores/cross-lane amortize with depth...
    loads = [r[1] for r in rows]
    stores = [r[2] for r in rows]
    assert loads[0] > loads[-1]
    assert stores == [1 / s for s in (1, 2, 3, 4)]
    # ...while arithmetic per step grows sub-linearly for 1-D
    arith = [r[5] for r in rows]
    assert arith[-1] < arith[0] * 4
