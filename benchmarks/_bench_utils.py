"""Importable benchmark helpers (kept out of conftest so tests/ and
benchmarks/ can be collected in one pytest invocation)."""


def emit(title: str, body: str) -> None:
    """Print a labelled experiment artifact (visible with -s and captured
    in the benchmark logs otherwise)."""
    bar = "=" * max(8, 72 - len(title))
    print(f"\n==== {title} {bar}")
    print(body)
