"""Importable benchmark helpers (kept out of conftest so tests/ and
benchmarks/ can be collected in one pytest invocation)."""

from contextlib import contextmanager

from repro import obs


def emit(title: str, body: str) -> None:
    """Print a labelled experiment artifact (visible with -s and captured
    in the benchmark logs otherwise)."""
    bar = "=" * max(8, 72 - len(title))
    print(f"\n==== {title} {bar}")
    print(body)


@contextmanager
def observed():
    """Record spans + metrics for the enclosed block (restoring the
    prior observability state afterwards)."""
    was_enabled = obs.enabled()
    obs.enable(reset=True)
    try:
        yield
    finally:
        if not was_enabled:
            obs.disable()


def attach_stages(data: dict) -> dict:
    """Fold the current observability snapshot into a benchmark artifact
    as its ``stages`` section — the per-stage breakdown (span trees +
    metrics) every ``BENCH_*.json`` carries next to its headline numbers.
    A no-op (and no key) when nothing was recorded."""
    snap = obs.snapshot()
    if snap["spans"] or any(snap["metrics"].values()):
        data["stages"] = snap
    return data
