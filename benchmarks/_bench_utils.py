"""Importable benchmark helpers (kept out of conftest so tests/ and
benchmarks/ can be collected in one pytest invocation)."""

import json
import time
from contextlib import contextmanager

from repro import obs

#: default cap on run entries a ``BENCH_*.json`` history keeps (newest
#: win); CI archives accumulate forever otherwise.
HISTORY_CAP = 40


def emit(title: str, body: str) -> None:
    """Print a labelled experiment artifact (visible with -s and captured
    in the benchmark logs otherwise)."""
    bar = "=" * max(8, 72 - len(title))
    print(f"\n==== {title} {bar}")
    print(body)


@contextmanager
def observed():
    """Record spans + metrics for the enclosed block (restoring the
    prior observability state afterwards)."""
    was_enabled = obs.enabled()
    obs.enable(reset=True)
    try:
        yield
    finally:
        if not was_enabled:
            obs.disable()


def load_history(path: str) -> list:
    """Prior runs from a ``BENCH_*.json`` artifact: a list of run
    entries.  A legacy single-run dict is wrapped; unreadable files
    start fresh."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            prior = json.load(fh)
    except (OSError, ValueError):
        return []
    if isinstance(prior, dict):
        return [prior]
    if isinstance(prior, list):
        return [e for e in prior if isinstance(e, dict)]
    return []


def _entry_key(entry: dict) -> str:
    """Canonical content of a run entry with the timestamp excluded."""
    return json.dumps({k: v for k, v in entry.items() if k != "timestamp"},
                      sort_keys=True, default=repr)


def append_history(path: str, entry: dict, *, cap: int = HISTORY_CAP) -> list:
    """Append a timestamped run ``entry`` to the artifact at ``path``.

    Two guards keep the history useful instead of unbounded: an entry
    byte-identical (timestamp aside) to the newest prior run is dropped —
    re-running an unchanged benchmark in one session should not inflate
    the file — and the history is trimmed to the newest ``cap`` entries.
    Returns the written history."""
    if cap < 1:
        raise ValueError("cap must be >= 1")
    entry = dict(entry)
    entry.setdefault("timestamp", time.strftime("%Y-%m-%dT%H:%M:%S%z"))
    history = load_history(path)
    if history and _entry_key(history[-1]) == _entry_key(entry):
        history[-1] = entry  # refresh the timestamp only
    else:
        history.append(entry)
    history = history[-cap:]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(history, fh, indent=2)
        fh.write("\n")
    return history


def attach_stages(data: dict) -> dict:
    """Fold the current observability snapshot into a benchmark artifact
    as its ``stages`` section — the per-stage breakdown (span trees +
    metrics) every ``BENCH_*.json`` carries next to its headline numbers.
    A no-op (and no key) when nothing was recorded."""
    snap = obs.snapshot()
    if snap["spans"] or any(snap["metrics"].values()):
        data["stages"] = snap
    return data
