"""Quickstart: compile and run a Jigsaw stencil kernel.

Shows the full public API surface in ~40 lines:

1. pick a machine model and a kernel,
2. compile it (the planner chooses ITM depth and the SDF decomposition),
3. run it — cycle-exact on the SIMD-machine interpreter and fast via the
   numpy path — and check both against the dense reference,
4. read the analytic accounting: per-vector instruction mix (the paper's
   Table-2 currency) and the modelled GStencil/s.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.config import AMD_EPYC_7V13
from repro.core import compile_kernel
from repro.stencils import apply_steps, library
from repro.stencils.grid import Grid

machine = AMD_EPYC_7V13
spec = library.get("box-2d9p")
print(f"kernel: {spec.name} ({spec.tag}), machine: {machine.name}")

# compile: geometry template first, then bind the real grid
shape = (64, 64)
template = compile_kernel(spec, machine, Grid(shape, 16))
grid = template.grid_like(shape, seed=42)
kernel = compile_kernel(spec, machine, grid)
print(f"plan:   {kernel.plan.describe()}")

steps = 2 * kernel.plan.time_fusion

# 1) cycle-exact execution on the SIMD register-machine interpreter
simulated = kernel.run(grid, steps)
# 2) the same algorithm on the fast numpy path
fast = kernel.run_numpy(grid, steps)
# 3) ground truth
reference = apply_steps(spec, grid, steps)

assert np.allclose(simulated.interior, reference.interior, rtol=1e-12)
assert np.allclose(fast.interior, reference.interior, rtol=1e-12)
print(f"correct: simulator and numpy paths match the reference "
      f"over {steps} steps")

# analytic accounting
mix = kernel.per_vector_mix()
print("\nper-vector instruction mix (loads/stores/cross-lane/in-lane/arith):")
print("  " + "  ".join(f"{k}={v:.2f}" for k, v in mix.items()))

est = kernel.estimate(points=10_000 * 10_000, steps=100)
print(f"\nmodelled single-core performance at 10000^2 x 100 steps:")
print(f"  {est.gstencil_s:.2f} GStencil/s ({est.bottleneck}-bound, "
      f"fed from {est.level})")
