"""3-D volume smoothing with the Box-3D27P kernel, in parallel.

Box stencils are the workhorse of seismic velocity-model smoothing and
volumetric image filtering (the paper's intro motivates exactly these
high-point-count kernels).  This example:

* smooths a noisy 3-D volume with the separable 27-point box filter,
* runs it on the real shared-memory thread-pool executor (tiles +
  barrier phases — the OpenMP structure of §4.4),
* shows why SDF loves this kernel: rank-1 separability collapses the
  27-tap gather into one flatten + one 3-tap pass,
* prints the modelled multicore scaling — the Box-3D27P slice of
  Figure 11.

Run:  python examples/seismic_smoothing_3d.py
"""

import time

import numpy as np

from repro.analysis.report import render_series
from repro.config import AMD_EPYC_7V13
from repro.core import compile_kernel
from repro.core.sdf import structured_terms
from repro.parallel.executor import run_parallel
from repro.parallel.simulator import MulticoreModel, ParallelSetup
from repro.schemes import model_cost
from repro.stencils import apply_steps, library
from repro.stencils.grid import Grid
from repro.stencils.library import table3_config

N = 64
STEPS = 4
WORKERS = 4

spec = library.get("box-3d27p")
machine = AMD_EPYC_7V13

# -- a noisy layered "velocity model" -----------------------------------------
rng = np.random.default_rng(7)
grid = Grid((N, N, N), spec.radius)
depth = np.linspace(1500.0, 4500.0, N)[:, None, None]  # velocity gradient
grid.interior[...] = depth + rng.normal(0.0, 300.0, size=(N, N, N))
noisy_std = grid.interior.std(axis=(1, 2)).mean()

t0 = time.perf_counter()
smoothed = run_parallel(spec, grid, STEPS, workers=WORKERS,
                        tile_shape=(16, 64, 64))
elapsed = time.perf_counter() - t0
smooth_std = smoothed.interior.std(axis=(1, 2)).mean()

ref = apply_steps(spec, grid, STEPS)
assert np.allclose(smoothed.interior, ref.interior, rtol=1e-12)
print(f"smoothed {N}^3 volume x {STEPS} sweeps on {WORKERS} threads "
      f"in {elapsed:.3f}s ({N**3 * STEPS / elapsed / 1e6:.1f} MStencil/s)")
print(f"per-layer noise std: {noisy_std:.1f} -> {smooth_std:.1f} m/s")

# -- why SDF loves this kernel ---------------------------------------------------
terms = structured_terms(spec)
print(f"\nSDF decomposition of {spec.tag}: {len(terms)} rank-1 term(s)")
for i, t in enumerate(terms):
    print(f"  term {i}: {t.rows} rows x {t.taps} x-taps "
          f"(27 dense taps collapse to {t.rows} FMAs + a 1-D pass)")

# -- the Figure-11 slice ------------------------------------------------------------
cfg = table3_config("box-3d27p")
model = MulticoreModel(machine)
cost = model_cost("jigsaw", spec, machine)
cores = [1, 2, 4, 8, 16, 24]
curve = model.scaling_curve(
    cost, spec, points=cfg.grid_points(), steps=cfg.time_steps,
    core_counts=cores,
    setup=ParallelSetup(tile_shape=cfg.tile_shape,
                        time_depth=cfg.time_depth),
)
print("\nmodelled Box-3D27P scalability on " + machine.name +
      " (Table-3 config):")
print(render_series("cores", cores,
                    {"jigsaw GStencil/s": [r.gstencil_s for r in curve]}))
print("note the 3-D roll-off at high core counts — the §4.5 bandwidth wall")
