"""Anatomy of a Jigsaw kernel: the generated instruction streams.

Prints the actual vector programs this library generates — the
Algorithm-1 LBV listing for the 1D5P stencil (compare with the paper's
Figure 3 / Algorithm 1), and the per-vector instruction-mix comparison
across every scheme (the live version of Table 2).

Run:  python examples/instruction_anatomy.py
"""

from repro.analysis.report import render_table
from repro.config import AMD_EPYC_7V13
from repro.core.lbv import generate_lbv, required_halo
from repro.schemes import LABELS, SCHEMES, model_program
from repro.stencils import library
from repro.stencils.grid import Grid

machine = AMD_EPYC_7V13

# -- Algorithm 1, generated --------------------------------------------------
spec = library.get("star-1d5p")
grid = Grid((64,), required_halo(spec, machine))
program = generate_lbv(spec, machine, grid)
print("LBV for the 1D5P stencil (the paper's Algorithm 1), as generated:")
print(program.listing())
print(f"\nregisters used: {program.registers_used()}, "
      f"overlapped shuffles: {program.overlapped}")

# -- live Table 2 across all schemes ---------------------------------------------
print("\nper-vector instruction mix across schemes (heat-2d):")
spec2 = library.get("heat-2d")
rows = []
for scheme in SCHEMES:
    if scheme == "t4-jigsaw":
        continue  # 1-D only
    prog = model_program(scheme, spec2, machine)
    pv = prog.per_vector_mix()
    rows.append([LABELS[scheme], pv["L"], pv["S"], pv["C"], pv["I"],
                 pv["A"], prog.registers_used()])
print(render_table(
    ["scheme", "loads", "stores", "cross-lane", "in-lane", "arith", "regs"],
    rows,
))
print("\ncross-lane column: Jigsaw's butterfly needs ~1 per vector (the "
      "§3.1 lower bound); Reorg/Folding pay several.")
