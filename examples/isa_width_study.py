"""Instruction-set generality study — the paper's §4.6 discussion.

All AVX-family registers are built from 128-bit lanes, so LBV's
lane-granular butterfly applies to SSE (1 lane), AVX2 (2) and AVX-512 (4)
alike.  This example lowers the same kernels at all three widths,
validates them on the width-parametric SIMD machine, and compares the
per-vector instruction mixes and modelled throughput.

Run:  python examples/isa_width_study.py
"""

import numpy as np

from repro.analysis.report import render_table
from repro.config import AMD_EPYC_7V13
from repro.core.jigsaw import generate_jigsaw, required_halo
from repro.machine.perfmodel import PerformanceModel
from repro.stencils import apply_steps, library
from repro.stencils.grid import Grid
from repro.vectorize.driver import run_program

BASE = AMD_EPYC_7V13
WIDTHS = {"SSE (128b)": 128, "AVX2 (256b)": 256, "AVX-512 (512b)": 512}

for kernel in ("heat-1d", "box-2d9p"):
    spec = library.get(kernel)
    rows = []
    for label, bits in WIDTHS.items():
        machine = BASE.with_vector_bits(bits)
        w = machine.vector_elems
        shape = (4,) * (spec.ndim - 1) + (12 * w,)
        grid = Grid.random(shape, required_halo(spec, machine), seed=5)
        prog = generate_jigsaw(spec, machine, grid)

        # validate on the width-parametric interpreter
        got = run_program(prog, grid, 2)
        ref = apply_steps(spec, grid, 2)
        assert np.allclose(got.interior, ref.interior, rtol=1e-12)

        pv = prog.per_vector_mix()
        model = PerformanceModel(machine)
        est = model.estimate(model.kernel_cost(prog),
                             points=10**8, steps=100)
        rows.append([label, w, machine.lanes, pv["C"], pv["I"],
                     est.gstencil_s])
    print(f"\nJigsaw across SIMD widths — {spec.name}:")
    print(render_table(
        ["ISA", "elems/reg", "lanes", "cross-lane/vec", "in-lane/vec",
         "modelled GStencil/s"],
        rows,
    ))

print("\nLBV stays correct and conflict-reduced at every lane count; wider "
      "registers trade slightly more cross-lane work per vector for twice "
      "the elements per instruction (§4.6's AVX10 outlook).")
