"""Heat diffusion on a 2-D plate — the workload the paper's Heat-2D
kernel models.

A hot square is placed on a cold plate and diffused with the 2D5P Jacobi
kernel.  The example exercises:

* the Jigsaw numpy path at a realistic size (512 x 512),
* physical sanity (heat conservation under periodic boundaries, peak decay),
* the modelled scheme comparison for this kernel on both paper machines —
  the single-kernel slice of Figure 9.

Run:  python examples/heat_diffusion_2d.py
"""

import time

import numpy as np

from repro.analysis.report import render_table
from repro.config import PAPER_MACHINES
from repro.core import compile_kernel
from repro.machine.perfmodel import PerformanceModel
from repro.schemes import LABELS, model_cost
from repro.stencils import library
from repro.stencils.grid import Grid

N = 512
STEPS = 200

spec = library.get("heat-2d")
machine = PAPER_MACHINES[0]

# -- build the initial condition: a hot square on a cold plate -----------------
template = compile_kernel(spec, machine, Grid((N, N), 16), time_fusion=2)
grid = template.grid_like((N, N))
grid.interior[...] = 20.0                      # 20 degrees everywhere
hot = slice(N // 2 - 8, N // 2 + 8)
grid.interior[hot, hot] = 400.0  # the hot square
kernel = compile_kernel(spec, machine, grid, time_fusion=2)

total_before = grid.interior.sum()
t0 = time.perf_counter()
result = kernel.run_numpy(grid, STEPS)
elapsed = time.perf_counter() - t0

field = result.interior
print(f"diffused {N}x{N} plate for {STEPS} steps in {elapsed:.3f}s "
      f"({N * N * STEPS / elapsed / 1e6:.1f} MStencil/s on the numpy path)")
print(f"heat conserved: {total_before:.1f} -> {field.sum():.1f} "
      f"(periodic boundaries)")
print(f"peak temperature decayed: 400.00 -> {field.max():.2f}")
assert np.isclose(total_before, field.sum(), rtol=1e-9)
assert field.max() < 400.0

# -- a coarse temperature map ---------------------------------------------------
print("\ntemperature map (block-averaged):")
blocks = field.reshape(8, N // 8, 8, N // 8).mean(axis=(1, 3))
ramp = " .:-=+*#%@"
lo, hi = blocks.min(), blocks.max()
for row in blocks:
    line = "".join(ramp[int((v - lo) / (hi - lo + 1e-12) * (len(ramp) - 1))]
                   for v in row)
    print("  " + line)

# -- the Figure-9 slice for this kernel ------------------------------------------
print("\nmodelled sequential GStencil/s for heat-2d "
      "(10000^2, 100 steps, no tiling):")
rows = []
for m in PAPER_MACHINES:
    model = PerformanceModel(m)
    row = [m.name]
    for scheme in ("auto", "reorg", "folding", "jigsaw", "t-jigsaw"):
        cost = model_cost(scheme, spec, m)
        row.append(model.estimate(cost, points=10_000**2, steps=100).gstencil_s)
    rows.append(row)
print(render_table(
    ["machine"] + [LABELS[s] for s in ("auto", "reorg", "folding", "jigsaw",
                                       "t-jigsaw")],
    rows,
))
