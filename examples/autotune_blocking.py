"""Autotuning the blocking parameters — how Table 3's numbers arise.

The paper "fine-tuned the size and blocking of each stencil kernel based
on relevant work to guarantee peak performance" (§4.1).  This example
reruns that process with the analytic model: for each Table-3 kernel it
searches spatial tiles and tessellation time depths, prints the best
configurations, and compares them against the paper's published blocking.

Also places the kernel on the machine's roofline, showing *why* the tuner
prefers deep time tiles: the kernel sits far left of the ridge point, and
only temporal reuse moves it right.

Run:  python examples/autotune_blocking.py
"""

from repro.analysis.report import render_table
from repro.analysis.roofline import roofline_table
from repro.config import AMD_EPYC_7V13
from repro.stencils import library
from repro.stencils.library import table3_config
from repro.tuning import autotune

machine = AMD_EPYC_7V13

print(f"autotuning Table-3 kernels on {machine.name} "
      f"({machine.total_cores} cores)\n")

rows = []
for kernel in ("heat-1d", "heat-2d", "box-2d9p", "heat-3d"):
    cfg = table3_config(kernel)
    spec = cfg.spec
    result = autotune(spec, machine, problem_size=cfg.problem_size,
                      steps=min(cfg.time_steps, 200))
    best = result.best
    rows.append([
        kernel,
        "x".join(map(str, cfg.tile_shape)) + f" / Tb={cfg.time_depth}",
        "x".join(map(str, best.tile_shape)) + f" / Tb={best.time_depth}",
        f"{best.gstencil_s:.1f}",
        best.result.bottleneck,
        result.evaluated,
    ])
print(render_table(
    ["kernel", "paper blocking", "tuned blocking", "GStencil/s", "bound",
     "candidates"],
    rows,
))

# -- roofline: why deep time tiles win --------------------------------------------
spec = library.get("heat-2d")
print(f"\nroofline placement of heat-2d schemes on {machine.name} "
      f"(one core):")
pts = roofline_table(spec, machine)
table = [
    [p.scheme, f"{p.intensity:.2f}", f"{p.achieved_gflops:.1f}",
     f"{p.bandwidth_ceiling_gflops['DRAM']:.1f}",
     f"{p.compute_ceiling_gflops:.1f}"]
    for p in pts
]
print(render_table(
    ["scheme", "FLOP/byte", "achieved GF/s", "DRAM ceiling", "peak GF/s"],
    table,
))
print("\nevery scheme's DRAM ceiling sits far below the compute peak — "
      "stencils live left of the ridge point, so the tuner reaches for "
      "temporal reuse (ITM + deep tessellation) before anything else.")
