"""Shim for legacy editable installs (offline environments without the
``wheel`` package, where PEP 660 editable wheels cannot be built).

Use ``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
